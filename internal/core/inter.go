package core

import (
	"fmt"
	"math"

	"compactroute/internal/graph"
	"compactroute/internal/parallel"
	"compactroute/internal/simnet"
	"compactroute/internal/space"
	"compactroute/internal/vicinity"
)

// Inter is the routing technique of Lemma 8: (1+eps)-stretch routing from
// any vertex of U_i to any vertex of W_i, where W = {W_1..W_q} partitions a
// target set W and U = {U_1..U_q} partitions V such that every part of U
// intersects every vicinity B(u, q-tilde).
type Inter struct {
	g       *graph.Graph
	vics    []*vicinity.Set
	uPartOf []int32
	wPartOf []int32 // part index of each target, -1 for non-targets
	b       int
	eps     float64
	scale   float64 // omega_min: unit of the doubling thresholds
	maxDist float64 // 2x one eccentricity: upper bound on any finite distance

	// relayRep[u][j] is a vertex of U_j inside B(u, q-tilde); its existence
	// is the hitting precondition of the lemma.
	relayRep [][]graph.Vertex
	// seqs[u][w] for every w in W_{uPartOf[u]}; nil maps when flat is set.
	seqs []map[graph.Vertex]interSeq
	// flat is the snapshot-aliased form of the sequences (v2 decode path):
	// per-source sorted target runs over one shared waypoint slab, consulted
	// by binary search instead of rebuilt maps. Exactly one of seqs/flat
	// carries the sequences.
	flat *interFlat
}

// interSeq is the stored sequence for one (source, target) pair.
type interSeq struct {
	waypoints []graph.Vertex
	relay     bool // last waypoint is a relay in U_j rather than the target
}

// interFlat stores every sequence in five flat arrays that alias the mapped
// snapshot: targets of source u are targets[srcOff[u]:srcOff[u+1]] in
// ascending order, sequence si's waypoints are wps[wpOff[si]:wpOff[si+1]],
// and relay holds one bit per sequence. All slices are read-only.
type interFlat struct {
	srcOff  []uint32 // n+1
	targets []graph.Vertex
	relay   []uint32 // bitset over sequence indexes
	wpOff   []uint32 // len(targets)+1
	wps     []graph.Vertex
}

// lookupSeq returns the stored sequence for the pair (u, w) from whichever
// representation this Inter carries.
func (in *Inter) lookupSeq(u, w graph.Vertex) (wps []graph.Vertex, relay, ok bool) {
	if f := in.flat; f != nil {
		lo, hi := int(f.srcOff[u]), int(f.srcOff[u+1])
		run := f.targets[lo:hi]
		i, j := 0, len(run)
		for i < j {
			h := int(uint(i+j) >> 1)
			if run[h] < w {
				i = h + 1
			} else {
				j = h
			}
		}
		if i >= len(run) || run[i] != w {
			return nil, false, false
		}
		si := lo + i
		return f.wps[f.wpOff[si]:f.wpOff[si+1]], f.relay[si>>5]>>(si&31)&1 == 1, true
	}
	sq, ok := in.seqs[u][w]
	return sq.waypoints, sq.relay, ok
}

// InterConfig carries the inputs of Lemma 8.
type InterConfig struct {
	Graph *graph.Graph
	// Paths supplies canonical shortest-path queries (dense or lazy).
	Paths graph.PathSource
	// Vics[u] must be B(u, q-tilde) for every vertex, where q = number of
	// parts of the partitions.
	Vics []*vicinity.Set
	// UPartOf[u] is the index of u's part in the partition U of V.
	UPartOf []int32
	// WParts is the partition W of the target set (part j receives messages
	// from sources of U_j).
	WParts [][]graph.Vertex
	Eps    float64
}

// NewInter runs the Lemma 8 preprocessing.
func NewInter(cfg InterConfig) (*Inter, error) {
	in, err := newInterBase(cfg)
	if err != nil {
		return nil, err
	}
	paths := cfg.Paths
	in.maxDist = maxDistBound(paths)
	q := len(cfg.WParts)
	// Sequences: every u stores one per target in W_{part(u)}.
	if err := parallel.ForErr(in.g.N(), func(u int) error {
		j := cfg.UPartOf[u]
		if int(j) >= q {
			return nil // parts beyond W receive no targets
		}
		in.seqs[u] = make(map[graph.Vertex]interSeq, len(cfg.WParts[j]))
		for _, w := range cfg.WParts[j] {
			if graph.Vertex(u) == w {
				continue
			}
			sq, err := in.buildSequence(paths, graph.Vertex(u), w, j)
			if err != nil {
				return fmt.Errorf("core: inter sequence %d->%d: %w", u, w, err)
			}
			in.seqs[u][w] = sq
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return in, nil
}

// newInterBase validates the Lemma 8 inputs and derives everything except
// the sequences and maxDist: the target partition map and the relay
// representatives are pure functions of the vicinities and partitions, so
// both the construction path (NewInter) and the snapshot restore path
// (RestoreInter) share this.
func newInterBase(cfg InterConfig) (*Inter, error) {
	g := cfg.Graph
	n := g.N()
	if len(cfg.Vics) != n || len(cfg.UPartOf) != n {
		return nil, fmt.Errorf("core: inter config arrays must have length n=%d", n)
	}
	b, err := budget(cfg.Eps)
	if err != nil {
		return nil, err
	}
	b++ // Lemma 8 uses b = ceil(2/eps) + 1
	q := len(cfg.WParts)
	in := &Inter{
		g:        g,
		vics:     cfg.Vics,
		uPartOf:  cfg.UPartOf,
		wPartOf:  make([]int32, n),
		b:        b,
		eps:      cfg.Eps,
		scale:    minEdgeWeight(g),
		relayRep: make([][]graph.Vertex, n),
		seqs:     make([]map[graph.Vertex]interSeq, n),
	}
	for i := range in.wPartOf {
		in.wPartOf[i] = -1
	}
	for j, part := range cfg.WParts {
		for _, w := range part {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("core: W vertex %d out of range [0,%d)", w, n)
			}
			if in.wPartOf[w] >= 0 {
				return nil, fmt.Errorf("core: %d appears twice in W", w)
			}
			in.wPartOf[w] = int32(j)
		}
	}
	// Relay representatives: for every vertex and every part index, the
	// closest member of that part inside the vertex's vicinity. Each vertex
	// owns its relayRep[u] slot, so the loop runs on the worker pool. Indexed
	// member access keeps the restore path free of per-set materialization.
	if err := parallel.ForErr(n, func(u int) error {
		reps := make([]graph.Vertex, q)
		for j := range reps {
			reps[j] = graph.NoVertex
		}
		found := 0
		vic := cfg.Vics[u]
		for i, c := 0, vic.Size(); i < c; i++ { // (dist, id) order
			mv := vic.MemberV(i)
			j := cfg.UPartOf[mv]
			if int(j) >= 0 && int(j) < q && reps[j] == graph.NoVertex {
				reps[j] = mv
				if found++; found == q {
					break
				}
			}
		}
		for j := range reps {
			if reps[j] == graph.NoVertex {
				return fmt.Errorf("core: U_%d does not intersect B(%d) (hitting precondition of Lemma 8 violated)", j, u)
			}
		}
		in.relayRep[u] = reps
		return nil
	}); err != nil {
		return nil, err
	}
	return in, nil
}

// buildSequence constructs the sequence stored at u for target w following
// Section 3: the first one or two path vertices, then subsequences produced
// with doubling thresholds 2*scale/b, 4*scale/b, ... Each subsequence either
// finishes the route (reaches w), hands off to a relay in U_j, or fills its
// 2b-vertex budget and doubles the threshold.
func (in *Inter) buildSequence(paths graph.PathSource, u, w graph.Vertex, j int32) (interSeq, error) {
	var sq interSeq
	if paths.Dist(u, w) == graph.Infinity {
		return sq, fmt.Errorf("unreachable")
	}
	// Shortcut kept from Lemma 2: a target already inside the vicinity is
	// reachable on a shortest path with a single waypoint.
	if in.vics[u].Contains(w) {
		sq.waypoints = []graph.Vertex{w}
		return sq, nil
	}
	u1 := paths.First(u, w)
	sq.waypoints = append(sq.waypoints, u1)
	if u1 == w {
		return sq, nil
	}
	u2 := paths.First(u1, w)
	sq.waypoints = append(sq.waypoints, u2)
	if u2 == w {
		return sq, nil
	}
	x := u2
	s := 2 * in.scale / float64(in.b)
	last := u2
	appendWP := func(v graph.Vertex) {
		if v != last {
			sq.waypoints = append(sq.waypoints, v)
			last = v
		}
	}
	maxSubseqs := 2*log2ceil(in.g.N())*int(math.Ceil(math.Log2(in.maxDist/in.scale+2))) + 16
	for sub := 0; ; sub++ {
		if sub > maxSubseqs {
			return sq, fmt.Errorf("subsequence count exceeded bound %d", maxSubseqs)
		}
		subLen := 0
		doubled := false
		for {
			if in.vics[x].Contains(w) {
				appendWP(w)
				return sq, nil
			}
			y, z, err := exitEdge(paths, in.vics[x], x, w)
			if err != nil {
				return sq, err
			}
			switch {
			case z == w:
				appendWP(y)
				appendWP(w)
				return sq, nil
			case paths.Dist(x, z) < s:
				relay := in.relayRep[x][j]
				appendWP(relay)
				sq.relay = true
				return sq, nil
			default:
				appendWP(y)
				appendWP(z)
				x = z
				subLen += 2
				if subLen >= 2*in.b {
					s *= 2
					doubled = true
				}
			}
			if doubled {
				break
			}
		}
	}
}

func log2ceil(n int) int {
	l := 1
	for x := 1; x < n; x *= 2 {
		l++
	}
	return l
}

// maxDistBound upper-bounds every finite pairwise distance: the eccentricity
// of any one vertex times 2 bounds the diameter. It reads a single row, and
// NewInter computes it once up front - per-sequence recomputation would make
// a lazy PathSource re-derive the row on every cache eviction.
func maxDistBound(paths graph.PathSource) float64 {
	var maxD float64 = 1
	if paths.N() > 0 {
		if e := graph.EccentricityOf(paths, 0); e > maxD {
			maxD = e
		}
	}
	return 2 * maxD
}

// InterState is the mutable packet header of an in-flight Lemma 8 route.
type InterState struct {
	dst      graph.Vertex
	wp       []graph.Vertex
	i        int
	relay    bool
	handoffs int
	maxLen   int
}

// Words returns the current header size in words.
func (st *InterState) Words() int {
	l := len(st.wp)
	if st.maxLen > l {
		l = st.maxLen
	}
	return l + 3
}

// Start builds the header at a source in U_{part(dst)}.
func (in *Inter) Start(src, dst graph.Vertex) (*InterState, error) {
	return in.StartInto(nil, src, dst)
}

// StartInto is Start writing into a caller-owned state (allocated when st is
// nil): the reuse hook the zero-alloc serving path needs. The waypoint slice
// is shared read-only table data, never copied, so resetting st in place
// carries nothing over.
func (in *Inter) StartInto(st *InterState, src, dst graph.Vertex) (*InterState, error) {
	if st == nil {
		st = &InterState{}
	}
	if src == dst {
		*st = InterState{dst: dst}
		return st, nil
	}
	if dst < 0 || int(dst) >= len(in.wPartOf) || in.wPartOf[dst] < 0 {
		return nil, fmt.Errorf("core: %d is not a Lemma 8 target", dst)
	}
	j := in.wPartOf[dst]
	if in.uPartOf[src] != j {
		return nil, fmt.Errorf("core: source %d is in U_%d, not U_%d", src, in.uPartOf[src], j)
	}
	wps, relay, ok := in.lookupSeq(src, dst)
	if !ok {
		return nil, fmt.Errorf("core: no sequence stored at %d for %d", src, dst)
	}
	*st = InterState{dst: dst, wp: wps, relay: relay, maxLen: len(wps)}
	return st, nil
}

// Step makes the local forwarding decision of Lemma 8's routing phase. At a
// relay the header is rewritten with the relay's own stored sequence.
func (in *Inter) Step(at graph.Vertex, st *InterState) (simnet.Decision, error) {
	if at == st.dst {
		return simnet.Deliver(), nil
	}
	for st.i < len(st.wp) && st.wp[st.i] == at {
		st.i++
	}
	if st.i >= len(st.wp) {
		if !st.relay {
			return simnet.Decision{}, fmt.Errorf("core: inter sequence exhausted at %d before %d", at, st.dst)
		}
		// Hand-off: this vertex is the relay r_{i+1}; swap in its sequence.
		wps, relay, ok := in.lookupSeq(at, st.dst)
		if !ok {
			return simnet.Decision{}, fmt.Errorf("core: relay %d has no sequence for %d", at, st.dst)
		}
		st.handoffs++
		if st.handoffs > in.g.N()+4 {
			return simnet.Decision{}, fmt.Errorf("core: relay hand-offs did not converge (Claim 9 violated?)")
		}
		st.wp, st.i, st.relay = wps, 0, relay
		if len(wps) > st.maxLen {
			st.maxLen = len(wps)
		}
		for st.i < len(st.wp) && st.wp[st.i] == at {
			st.i++
		}
		if st.i >= len(st.wp) {
			return simnet.Decision{}, fmt.Errorf("core: relay %d produced an empty continuation for %d", at, st.dst)
		}
	}
	p, err := forwardToward(in.g, in.vics, at, st.wp[st.i])
	if err != nil {
		return simnet.Decision{}, err
	}
	return simnet.Forward(p), nil
}

// Budget returns b = ceil(2/eps) + 1.
func (in *Inter) Budget() int { return in.b }

// Targets reports whether dst is one of the Lemma 8 targets.
func (in *Inter) Targets(dst graph.Vertex) bool {
	return dst >= 0 && int(dst) < len(in.wPartOf) && in.wPartOf[dst] >= 0
}

// TargetPart returns the part index of a target.
func (in *Inter) TargetPart(dst graph.Vertex) (int32, bool) {
	if !in.Targets(dst) {
		return 0, false
	}
	return in.wPartOf[dst], true
}

// AddTableWords charges the Lemma 8 storage to a tally: the relay
// representatives and the per-target sequences. (Vicinities are charged by
// the owning scheme.)
func (in *Inter) AddTableWords(t *space.Tally) {
	for u := 0; u < in.g.N(); u++ {
		t.Add("lemma8-relay-reps", u, len(in.relayRep[u]))
		words := 0
		if f := in.flat; f != nil {
			for si := f.srcOff[u]; si < f.srcOff[u+1]; si++ {
				words += 2 + int(f.wpOff[si+1]-f.wpOff[si]) // target key + relay flag + waypoints
			}
		} else {
			for _, sq := range in.seqs[u] {
				words += 2 + len(sq.waypoints) // target key + relay flag + waypoints
			}
		}
		t.Add("lemma8-sequences", u, words)
	}
}

// InterScheme wraps Inter as a standalone simnet.Scheme for experiment E4.
type InterScheme struct {
	In *Inter
}

var _ simnet.Scheme = (*InterScheme)(nil)

// Name implements simnet.Scheme.
func (s *InterScheme) Name() string { return "lemma8-inter" }

// Graph implements simnet.Scheme.
func (s *InterScheme) Graph() *graph.Graph { return s.In.g }

// Prepare implements simnet.Scheme.
func (s *InterScheme) Prepare(src, dst graph.Vertex) (simnet.Packet, error) {
	return s.In.Start(src, dst)
}

// Next implements simnet.Scheme.
func (s *InterScheme) Next(at graph.Vertex, p simnet.Packet) (simnet.Decision, error) {
	return s.In.Step(at, p.(*InterState))
}

// HeaderWords implements simnet.Scheme.
func (s *InterScheme) HeaderWords(p simnet.Packet) int { return p.(*InterState).Words() }

// TableWords implements simnet.Scheme.
func (s *InterScheme) TableWords(v graph.Vertex) int {
	t := space.NewTally(s.In.g.N())
	s.In.AddTableWords(t)
	for u := 0; u < s.In.g.N(); u++ {
		t.Add("vicinity", u, s.In.vics[u].Words())
	}
	return t.At(int(v))
}

// LabelWords implements simnet.Scheme.
func (s *InterScheme) LabelWords(graph.Vertex) int { return 2 }

// StretchBound implements simnet.Scheme: Lemma 8 proves (1 + 2/(b-1))d.
func (s *InterScheme) StretchBound(d float64) float64 {
	return (1 + 2/float64(s.In.b-1)) * d
}
