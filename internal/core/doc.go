// Package core implements the paper's primary contribution: the two new
// routing techniques of Section 3.
//
//   - Intra (Lemma 7): given a partition U = {U_1..U_q} of V, route between
//     any two vertices of the same part on a (1+eps)-stretch path. Every
//     source stores, per destination in its part, a short sequence of
//     waypoints lying on a shortest path; consecutive waypoints are joined
//     either by a direct link or through the previous waypoint's vicinity
//     (Lemma 2), and a final fallback routes through the spanning shortest
//     path tree of a hitting-set landmark.
//
//   - Inter (Lemma 8): given a partition W of a set W subset of V and a
//     partition U of V whose parts hit every vicinity, route from any vertex
//     of U_i to any vertex of W_i on a (1+eps)-stretch path. Sequences are
//     built from subsequences with geometrically doubling thresholds; when a
//     subsequence bottoms out, the message is handed to a relay in U_i that
//     holds its own sequence for the destination. Claim 9 of the paper shows
//     each relay strictly decreases the remaining distance, which bounds the
//     number of hand-offs.
//
// Both techniques assume the preprocessing phase is centralized (it consults
// all-pairs shortest paths), while routing is strictly local: every decision
// at a vertex uses only that vertex's tables and the packet header.
package core
