package core

import (
	"fmt"

	"compactroute/internal/graph"
	"compactroute/internal/parallel"
	"compactroute/internal/vicinity"
)

// InterRepairConfig carries the inputs of an incremental Lemma 8 repair
// after edge updates. The partitions (U and W) are those of the original
// build and must be unchanged - the caller escalates to a full rebuild when
// the coloring or the landmark set moved.
type InterRepairConfig struct {
	Graph *graph.Graph     // the updated graph
	Paths graph.PathSource // canonical shortest paths over the updated graph
	// Vics are the repaired vicinities (same q-tilde as the original build;
	// clean sets may be shared with the old family).
	Vics []*vicinity.Set
	// VicDirty[x] reports that B(x) changed, which dirties the relay
	// representatives of x and every sequence whose construction walked
	// through x.
	VicDirty []bool
	// SeqDirty reports that the stored sequence u->w must be rebuilt for a
	// reason the waypoint scan cannot see: the caller's geodesic analysis
	// found an updated edge on (or newly on) a canonical path the sequence
	// construction consulted. It is called concurrently and must be
	// read-only. nil means no extra dirtiness.
	SeqDirty func(u, w graph.Vertex, waypoints []graph.Vertex) bool
}

// Repair returns a new Inter over the updated graph that is bit-identical
// to NewInter on the same inputs, rebuilding only the sequences the config
// marks dirty (directly via SeqDirty, or transitively via a dirty vicinity
// or changed relay representative at the source or any stored waypoint -
// every vertex whose tables the sequence construction consulted is one of
// those). Clean sources share their whole sequence map with the old
// structure. The second return value is the number of rebuilt sequences.
//
// Errors mean the repair preconditions do not hold (snapshot-aliased
// sequences, a changed doubling unit, a part that no longer intersects a
// dirty vicinity, an unreachable dirty pair); the caller escalates to a
// full rebuild.
func (in *Inter) Repair(cfg InterRepairConfig) (*Inter, int, error) {
	if in.flat != nil {
		return nil, 0, fmt.Errorf("core: snapshot-aliased sequences are not repairable in place")
	}
	n := cfg.Graph.N()
	if n != in.g.N() || len(cfg.Vics) != n || len(cfg.VicDirty) != n {
		return nil, 0, fmt.Errorf("core: repair config arrays must have length n=%d", in.g.N())
	}
	if sc := minEdgeWeight(cfg.Graph); sc != in.scale {
		// The doubling thresholds of every stored sequence are multiples of
		// scale/b; a changed minimum edge weight re-seeds all of them.
		return nil, 0, fmt.Errorf("core: minimum edge weight changed %v -> %v", in.scale, sc)
	}
	out := &Inter{
		g:       cfg.Graph,
		vics:    cfg.Vics,
		uPartOf: in.uPartOf,
		wPartOf: in.wPartOf,
		b:       in.b,
		eps:     in.eps,
		scale:   in.scale,
		// maxDist is what a from-scratch build would compute on the new
		// graph; it only sizes the runaway guard of buildSequence, so clean
		// sequences stay valid.
		maxDist:  maxDistBound(cfg.Paths),
		relayRep: make([][]graph.Vertex, n),
		seqs:     make([]map[graph.Vertex]interSeq, n),
	}
	// Relay representatives are a pure function of the vicinity and the U
	// partition: recompute them for dirty vicinities, share the rest.
	relayChanged := make([]bool, n)
	if err := parallel.ForErr(n, func(u int) error {
		if !cfg.VicDirty[u] {
			out.relayRep[u] = in.relayRep[u]
			return nil
		}
		q := len(in.relayRep[u])
		reps := make([]graph.Vertex, q)
		for j := range reps {
			reps[j] = graph.NoVertex
		}
		found := 0
		vic := cfg.Vics[u]
		for i, c := 0, vic.Size(); i < c && found < q; i++ { // (dist, id) order
			mv := vic.MemberV(i)
			j := in.uPartOf[mv]
			if int(j) >= 0 && int(j) < q && reps[j] == graph.NoVertex {
				reps[j] = mv
				found++
			}
		}
		for j := range reps {
			if reps[j] == graph.NoVertex {
				return fmt.Errorf("core: U_%d no longer intersects B(%d) (hitting precondition of Lemma 8 violated)", j, u)
			}
		}
		for j := range reps {
			if reps[j] != in.relayRep[u][j] {
				relayChanged[u] = true
				break
			}
		}
		out.relayRep[u] = reps
		return nil
	}); err != nil {
		return nil, 0, err
	}
	rebuiltPer := make([]int, n)
	if err := parallel.ForErr(n, func(ui int) error {
		u := graph.Vertex(ui)
		old := in.seqs[ui]
		if old == nil {
			return nil // part beyond W: no targets
		}
		j := in.uPartOf[ui]
		// A dirty vicinity or changed relay at the source invalidates every
		// sequence of the source (the B(u) shortcut and the first hops are
		// consulted for all of them).
		selfDirty := cfg.VicDirty[ui] || relayChanged[ui]
		var dirty []graph.Vertex
		for w, sq := range old {
			d := selfDirty
			if !d {
				for _, wp := range sq.waypoints {
					if cfg.VicDirty[wp] || relayChanged[wp] {
						d = true
						break
					}
				}
			}
			if !d && cfg.SeqDirty != nil {
				d = cfg.SeqDirty(u, w, sq.waypoints)
			}
			if d {
				dirty = append(dirty, w)
			}
		}
		if len(dirty) == 0 {
			out.seqs[ui] = old // COW: clean source shares the old map
			return nil
		}
		m := make(map[graph.Vertex]interSeq, len(old))
		for w, sq := range old {
			m[w] = sq
		}
		for _, w := range dirty {
			sq, err := out.buildSequence(cfg.Paths, u, w, j)
			if err != nil {
				return fmt.Errorf("core: inter repair %d->%d: %w", u, w, err)
			}
			m[w] = sq
		}
		out.seqs[ui] = m
		rebuiltPer[ui] = len(dirty)
		return nil
	}); err != nil {
		return nil, 0, err
	}
	rebuilt := 0
	for _, c := range rebuiltPer {
		rebuilt += c
	}
	return out, rebuilt, nil
}
