package core

import (
	"fmt"
	"math"

	"compactroute/internal/graph"
	"compactroute/internal/vicinity"
)

// exitEdge finds the edge (y, z) on the canonical shortest path from x to v
// such that y is in B(x) and z is not - the edge both sequence constructions
// of Section 3 pivot on. Membership along a shortest path is a prefix
// (distances strictly increase and vicinities are closed under "closer in
// (dist, id) order"), so a forward walk finds it.
//
// Preconditions: v is not in B(x) and v is reachable from x.
func exitEdge(paths graph.PathSource, vic *vicinity.Set, x, v graph.Vertex) (y, z graph.Vertex, err error) {
	if vic.Contains(v) {
		return graph.NoVertex, graph.NoVertex, fmt.Errorf("core: exitEdge called with %d inside B(%d)", v, x)
	}
	y = x
	for {
		z = paths.First(y, v)
		if z == graph.NoVertex || z == y {
			return graph.NoVertex, graph.NoVertex, fmt.Errorf("core: no path from %d to %d", x, v)
		}
		if !vic.Contains(z) {
			return y, z, nil
		}
		y = z
	}
}

// forwardToward returns the port on which a packet at `at` should leave to
// make progress toward the waypoint target, using the vicinity first-hop
// table (Lemma 2) when the target is in B(at), or the direct link otherwise.
// By construction of the sequences one of the two always applies: Property 1
// keeps a waypoint inside the vicinities of every intermediate vertex.
func forwardToward(g *graph.Graph, vics []*vicinity.Set, at, target graph.Vertex) (graph.Port, error) {
	if first, ok := vics[at].FirstHop(target); ok {
		p := g.PortTo(at, first)
		if p == graph.NoPort {
			return graph.NoPort, fmt.Errorf("core: vicinity first hop %d of %d is not a neighbor", first, at)
		}
		return p, nil
	}
	if p := g.PortTo(at, target); p != graph.NoPort {
		return p, nil
	}
	return graph.NoPort, fmt.Errorf("core: waypoint %d is neither in B(%d) nor adjacent to it", target, at)
}

// minEdgeWeight returns the smallest edge weight of g. The minimum-weight
// edge is itself a shortest path, so this equals the paper's omega_min over
// shortest-path edges E' and serves as the unit for the doubling thresholds
// of Lemma 8.
func minEdgeWeight(g *graph.Graph) float64 {
	minW := math.Inf(1)
	for u := 0; u < g.N(); u++ {
		g.Neighbors(graph.Vertex(u), func(_ graph.Port, _ graph.Vertex, w float64) bool {
			if w < minW {
				minW = w
			}
			return true
		})
	}
	if math.IsInf(minW, 1) {
		return 1
	}
	return minW
}

// budget returns b = ceil(2/eps), the per-sequence round budget of Lemma 7.
func budget(eps float64) (int, error) {
	if eps <= 0 {
		return 0, fmt.Errorf("core: need eps > 0, got %v", eps)
	}
	b := int(math.Ceil(2 / eps))
	if b < 1 {
		b = 1
	}
	return b, nil
}
