package cluster

import (
	"fmt"
	"math"
	"sort"

	"compactroute/internal/graph"
	"compactroute/internal/wire"
)

// EncodeWire writes the landmark structure: the set A, the nearest-landmark
// tables p_A / d(.,A), and every cluster's members (V, Dist, Parent) in
// search order. The bunches are the transpose of the clusters and are
// rebuilt on decode.
func (l *Landmarks) EncodeWire(e *wire.Encoder) {
	e.Vertices(l.A)
	e.Vertices(l.P)
	e.Float64s(l.DistA)
	for _, ms := range l.clusters {
		e.Uint32(uint32(len(ms)))
		for _, m := range ms {
			e.Vertex(m.V)
			e.Float64(m.Dist)
			e.Vertex(m.Parent)
		}
	}
}

// Restore rebuilds a Landmarks from its serialized parts, re-deriving the
// membership flags and the bunch transpose exactly as New does.
func Restore(n int, a, p []graph.Vertex, distA []float64, clusters [][]Member) (*Landmarks, error) {
	if len(a) == 0 {
		return nil, fmt.Errorf("cluster: restore: empty landmark set")
	}
	if len(p) != n || len(distA) != n || len(clusters) != n {
		return nil, fmt.Errorf("cluster: restore: table lengths %d/%d/%d, want n=%d",
			len(p), len(distA), len(clusters), n)
	}
	l := &Landmarks{
		A:        a,
		inA:      make([]bool, n),
		P:        p,
		DistA:    distA,
		clusters: clusters,
		bunches:  make([][]graph.Vertex, n),
	}
	for i, v := range a {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("cluster: restore: landmark %d out of range", v)
		}
		if i > 0 && a[i-1] >= v {
			return nil, fmt.Errorf("cluster: restore: landmark set not sorted and unique at %d", v)
		}
		l.inA[v] = true
	}
	for v := 0; v < n; v++ {
		if p[v] < 0 || int(p[v]) >= n || !l.inA[p[v]] {
			return nil, fmt.Errorf("cluster: restore: p_A(%d)=%d is not a landmark", v, p[v])
		}
		if math.IsNaN(distA[v]) || distA[v] < 0 {
			return nil, fmt.Errorf("cluster: restore: d(%d, A)=%v invalid", v, distA[v])
		}
	}
	for w, ms := range clusters {
		for _, m := range ms {
			if m.V < 0 || int(m.V) >= n {
				return nil, fmt.Errorf("cluster: restore: member %d of C_A(%d) out of range", m.V, w)
			}
			if m.Parent != graph.NoVertex && (m.Parent < 0 || int(m.Parent) >= n) {
				return nil, fmt.Errorf("cluster: restore: parent %d in C_A(%d) out of range", m.Parent, w)
			}
			l.bunches[m.V] = append(l.bunches[m.V], graph.Vertex(w))
		}
	}
	for v := range l.bunches {
		sort.Slice(l.bunches[v], func(i, j int) bool { return l.bunches[v][i] < l.bunches[v][j] })
	}
	return l, nil
}

// DecodeWire reads a landmark structure written by EncodeWire.
func DecodeWire(d *wire.Decoder, n int) (*Landmarks, error) {
	a := d.Vertices()
	p := d.Vertices()
	distA := d.Float64s()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if !d.Alloc(int64(n) * 48) { // per-vertex tables, cluster and bunch headers
		return nil, d.Err()
	}
	clusters := make([][]Member, n)
	for w := 0; w < n; w++ {
		c := d.Count(16) // V + Dist + Parent
		if d.Err() != nil {
			return nil, d.Err()
		}
		ms := make([]Member, c)
		for i := range ms {
			ms[i] = Member{V: d.Vertex(), Dist: d.Float64(), Parent: d.Vertex()}
		}
		clusters[w] = ms
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	l, err := Restore(n, a, p, distA, clusters)
	if err != nil {
		d.Failf("%v", err)
		return nil, d.Err()
	}
	return l, nil
}
