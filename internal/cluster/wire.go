package cluster

import (
	"fmt"
	"math"
	"sort"

	"compactroute/internal/graph"
	"compactroute/internal/wire"
)

// EncodeWire writes the landmark structure: the set A, the nearest-landmark
// tables p_A / d(.,A), and every cluster's members (V, Dist, Parent) in
// search order. The bunches are the transpose of the clusters and are
// rebuilt on decode.
func (l *Landmarks) EncodeWire(e *wire.Encoder) {
	e.Vertices(l.A)
	e.Vertices(l.P)
	e.Float64s(l.DistA)
	for _, ms := range l.clusters {
		e.Uint32(uint32(len(ms)))
		for _, m := range ms {
			e.Vertex(m.V)
			e.Float64(m.Dist)
			e.Vertex(m.Parent)
		}
	}
}

// EncodeWireV2 writes the landmark structure in the compressed v2 layout:
// the set A as uvarint deltas (it is sorted and unique), the
// nearest-landmark table p_A as uvarint indexes into A, d(.,A) as a
// FloatSeq, and the cluster members as uvarint ids with their distances in
// one shared FloatSeq and each parent as the uvarint member-index + 1 of
// the member it equals (0 marks the cluster root) - parents are discovered
// before their children in search order, so the index exists, compresses
// short and validates membership for free.
func (l *Landmarks) EncodeWireV2(e *wire.Encoder) error {
	e.Uvarint(uint64(len(l.A)))
	prev := graph.Vertex(0)
	aIdx := make(map[graph.Vertex]int, len(l.A))
	for i, v := range l.A {
		e.Uvarint(uint64(v - prev))
		prev = v
		aIdx[v] = i
	}
	for _, p := range l.P {
		i, ok := aIdx[p]
		if !ok {
			return fmt.Errorf("cluster: encode: p_A value %d is not a landmark", p)
		}
		e.Uvarint(uint64(i))
	}
	e.FloatSeq(l.DistA)
	total := 0
	for _, ms := range l.clusters {
		e.Uvarint(uint64(len(ms)))
		total += len(ms)
	}
	dists := make([]float64, 0, total)
	pos := make(map[graph.Vertex]int)
	for w, ms := range l.clusters {
		clear(pos)
		for i, m := range ms {
			e.Uvarint(uint64(m.V))
			pos[m.V] = i
			dists = append(dists, m.Dist)
		}
		for _, m := range ms {
			if m.Parent == graph.NoVertex {
				e.Uvarint(0)
				continue
			}
			i, ok := pos[m.Parent]
			if !ok {
				return fmt.Errorf("cluster: encode: parent %d of %d in C_A(%d) is not a cluster member", m.Parent, m.V, w)
			}
			e.Uvarint(uint64(i) + 1)
		}
	}
	e.FloatSeq(dists)
	return nil
}

// DecodeWireV2 reads a landmark structure written by EncodeWireV2.
func DecodeWireV2(d *wire.Decoder, n int) (*Landmarks, error) {
	na := int(d.Uvarint())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if na < 1 || na > n {
		d.Failf("landmark set of %d for n=%d", na, n)
		return nil, d.Err()
	}
	if !d.Alloc(int64(na)*4 + int64(n)*32) {
		return nil, d.Err()
	}
	a := make([]graph.Vertex, na)
	prev := graph.Vertex(0)
	for i := range a {
		prev += graph.Vertex(d.Uvarint())
		if prev < 0 || int(prev) >= n {
			d.Failf("landmark %d out of range", prev)
			return nil, d.Err()
		}
		a[i] = prev // Restore re-checks sorted-and-unique
	}
	p := make([]graph.Vertex, n)
	for v := range p {
		i := d.Uvarint()
		if i >= uint64(na) {
			d.Failf("p_A(%d) index %d outside the landmark set", v, i)
			return nil, d.Err()
		}
		p[v] = a[i]
	}
	distA := make([]float64, n)
	d.FloatSeq(distA)
	counts := make([]int, n)
	total := 0
	for w := range counts {
		c := int(d.Uvarint())
		if c < 0 || c > n {
			d.Failf("C_A(%d) claims %d members (n=%d)", w, c, n)
			return nil, d.Err()
		}
		counts[w] = c
		total += c
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if !d.Alloc(int64(total) * 40) { // member slab + bunch entries
		return nil, d.Err()
	}
	slab := make([]Member, total)
	clusters := make([][]Member, n)
	off := 0
	for w := range clusters {
		ms := slab[off : off+counts[w] : off+counts[w]]
		off += counts[w]
		for i := range ms {
			v := d.Uvarint()
			if v >= uint64(n) {
				d.Failf("member %d of C_A(%d) out of range", v, w)
				return nil, d.Err()
			}
			ms[i].V = graph.Vertex(v)
		}
		for i := range ms {
			pi := d.Uvarint()
			if pi == 0 {
				ms[i].Parent = graph.NoVertex
				continue
			}
			if pi > uint64(len(ms)) {
				d.Failf("parent index %d of member %d in C_A(%d) out of range", pi, i, w)
				return nil, d.Err()
			}
			ms[i].Parent = ms[pi-1].V
		}
		clusters[w] = ms
	}
	dists := make([]float64, total)
	d.FloatSeq(dists)
	if d.Err() != nil {
		return nil, d.Err()
	}
	for i := range slab {
		slab[i].Dist = dists[i]
	}
	l, err := Restore(n, a, p, distA, clusters)
	if err != nil {
		d.Failf("%v", err)
		return nil, d.Err()
	}
	return l, nil
}

// Restore rebuilds a Landmarks from its serialized parts, re-deriving the
// membership flags and the bunch transpose exactly as New does.
func Restore(n int, a, p []graph.Vertex, distA []float64, clusters [][]Member) (*Landmarks, error) {
	if len(a) == 0 {
		return nil, fmt.Errorf("cluster: restore: empty landmark set")
	}
	if len(p) != n || len(distA) != n || len(clusters) != n {
		return nil, fmt.Errorf("cluster: restore: table lengths %d/%d/%d, want n=%d",
			len(p), len(distA), len(clusters), n)
	}
	l := &Landmarks{
		A:        a,
		inA:      make([]bool, n),
		P:        p,
		DistA:    distA,
		clusters: clusters,
		bunches:  make([][]graph.Vertex, n),
	}
	for i, v := range a {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("cluster: restore: landmark %d out of range", v)
		}
		if i > 0 && a[i-1] >= v {
			return nil, fmt.Errorf("cluster: restore: landmark set not sorted and unique at %d", v)
		}
		l.inA[v] = true
	}
	for v := 0; v < n; v++ {
		if p[v] < 0 || int(p[v]) >= n || !l.inA[p[v]] {
			return nil, fmt.Errorf("cluster: restore: p_A(%d)=%d is not a landmark", v, p[v])
		}
		if math.IsNaN(distA[v]) || distA[v] < 0 {
			return nil, fmt.Errorf("cluster: restore: d(%d, A)=%v invalid", v, distA[v])
		}
	}
	for w, ms := range clusters {
		for _, m := range ms {
			if m.V < 0 || int(m.V) >= n {
				return nil, fmt.Errorf("cluster: restore: member %d of C_A(%d) out of range", m.V, w)
			}
			if m.Parent != graph.NoVertex && (m.Parent < 0 || int(m.Parent) >= n) {
				return nil, fmt.Errorf("cluster: restore: parent %d in C_A(%d) out of range", m.Parent, w)
			}
			l.bunches[m.V] = append(l.bunches[m.V], graph.Vertex(w))
		}
	}
	for v := range l.bunches {
		sort.Slice(l.bunches[v], func(i, j int) bool { return l.bunches[v][i] < l.bunches[v][j] })
	}
	return l, nil
}

// DecodeWire reads a landmark structure written by EncodeWire.
func DecodeWire(d *wire.Decoder, n int) (*Landmarks, error) {
	a := d.Vertices()
	p := d.Vertices()
	distA := d.Float64s()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if !d.Alloc(int64(n) * 48) { // per-vertex tables, cluster and bunch headers
		return nil, d.Err()
	}
	clusters := make([][]Member, n)
	for w := 0; w < n; w++ {
		c := d.Count(16) // V + Dist + Parent
		if d.Err() != nil {
			return nil, d.Err()
		}
		ms := make([]Member, c)
		for i := range ms {
			ms[i] = Member{V: d.Vertex(), Dist: d.Float64(), Parent: d.Vertex()}
		}
		clusters[w] = ms
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	l, err := Restore(n, a, p, distA, clusters)
	if err != nil {
		d.Failf("%v", err)
		return nil, d.Err()
	}
	return l, nil
}
