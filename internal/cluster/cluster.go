// Package cluster implements the bunches and clusters of Thorup and Zwick
// used throughout the paper (Section 2), and the center-cover construction of
// Lemma 4 that finds a landmark set A whose clusters are all small.
//
// For a landmark set A, p_A(v) is the nearest landmark of v (ties broken by
// smaller vertex id) and d(v, A) = d(v, p_A(v)). The cluster of w is
// C_A(w) = {w} u {v : d(w, v) < d(v, A)} and the bunch of v is
// B_A(v) = {v} u {w : d(w, v) < d(v, A)}, so w in B_A(v) iff v in C_A(w).
// Centers are included explicitly (the convention Section 5 of the paper
// needs for the degenerate level L_0 = V, where B_{L_0}(v) = {v}).
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"compactroute/internal/graph"
	"compactroute/internal/parallel"
)

// Member is one vertex of a cluster together with its position in the
// cluster's shortest-path tree.
type Member struct {
	V      graph.Vertex
	Dist   float64
	Parent graph.Vertex // NoVertex for the cluster's root
}

// Landmarks holds a landmark set and everything derived from it.
type Landmarks struct {
	A        []graph.Vertex
	inA      []bool
	P        []graph.Vertex // p_A(v)
	DistA    []float64      // d(v, A)
	clusters [][]Member     // clusters[w] = C_A(w), root first
	bunches  [][]graph.Vertex
}

// New computes p_A, d(.,A), every cluster and every bunch for the landmark
// set a over g. The set must be non-empty.
func New(g *graph.Graph, a []graph.Vertex) (*Landmarks, error) {
	if len(a) == 0 {
		return nil, fmt.Errorf("cluster: empty landmark set")
	}
	n := g.N()
	l := &Landmarks{
		A:     append([]graph.Vertex(nil), a...),
		inA:   make([]bool, n),
		P:     make([]graph.Vertex, n),
		DistA: make([]float64, n),
	}
	sort.Slice(l.A, func(i, j int) bool { return l.A[i] < l.A[j] })
	for i := 1; i < len(l.A); i++ {
		if l.A[i] == l.A[i-1] {
			return nil, fmt.Errorf("cluster: duplicate landmark %d", l.A[i])
		}
	}
	for _, v := range l.A {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("cluster: landmark %d out of range", v)
		}
		l.inA[v] = true
	}
	l.nearestLandmarks(g)
	l.buildClusters(g)
	return l, nil
}

// Nearest computes, for every vertex of g, the nearest member of a (ties in
// distance broken toward the smaller member id, the paper's lexicographic
// convention) and the distance to it, via one multi-source Dijkstra.
func Nearest(g *graph.Graph, a []graph.Vertex) (p []graph.Vertex, dist []float64, err error) {
	if len(a) == 0 {
		return nil, nil, fmt.Errorf("cluster: empty landmark set")
	}
	for _, v := range a {
		if v < 0 || int(v) >= g.N() {
			return nil, nil, fmt.Errorf("cluster: landmark %d out of range", v)
		}
	}
	l := &Landmarks{
		P:     make([]graph.Vertex, g.N()),
		DistA: make([]float64, g.N()),
	}
	l.A = append(l.A, a...)
	l.nearestLandmarks(g)
	return l.P, l.DistA, nil
}

// nearestLandmarks runs a multi-source Dijkstra from A. Ties in distance are
// broken toward the smaller landmark id, matching the paper's lexicographic
// convention for p_A.
func (l *Landmarks) nearestLandmarks(g *graph.Graph) {
	n := g.N()
	for v := 0; v < n; v++ {
		l.DistA[v] = math.Inf(1)
		l.P[v] = graph.NoVertex
	}
	type item struct {
		dist float64
		p    graph.Vertex // landmark
		v    graph.Vertex
	}
	lessItem := func(a, b item) bool {
		if a.dist != b.dist {
			return a.dist < b.dist
		}
		if a.p != b.p {
			return a.p < b.p
		}
		return a.v < b.v
	}
	var heap []item
	push := func(it item) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			par := (i - 1) / 2
			if !lessItem(heap[i], heap[par]) {
				break
			}
			heap[i], heap[par] = heap[par], heap[i]
			i = par
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			lc, rc, sm := 2*i+1, 2*i+2, i
			if lc < len(heap) && lessItem(heap[lc], heap[sm]) {
				sm = lc
			}
			if rc < len(heap) && lessItem(heap[rc], heap[sm]) {
				sm = rc
			}
			if sm == i {
				break
			}
			heap[i], heap[sm] = heap[sm], heap[i]
			i = sm
		}
		return top
	}
	better := func(d float64, p graph.Vertex, v graph.Vertex) bool {
		if d != l.DistA[v] {
			return d < l.DistA[v]
		}
		return p < l.P[v]
	}
	for _, a := range l.A {
		l.DistA[a] = 0
		l.P[a] = a
		push(item{dist: 0, p: a, v: a})
	}
	for len(heap) > 0 {
		it := pop()
		if it.dist != l.DistA[it.v] || it.p != l.P[it.v] {
			continue
		}
		g.Neighbors(it.v, func(_ graph.Port, x graph.Vertex, w float64) bool {
			if nd := it.dist + w; better(nd, it.p, x) {
				l.DistA[x] = nd
				l.P[x] = it.p
				push(item{dist: nd, p: it.p, v: x})
			}
			return true
		})
	}
}

// buildClusters runs, for every w, a Dijkstra pruned to the cluster
// condition d(w, v) < d(v, A). The standard Thorup-Zwick argument shows the
// pruned search reaches every cluster member along a shortest path that
// stays inside the cluster, so the parents form the cluster tree T_{C_A(w)}.
//
// The per-root searches are independent and run on the shared worker pool;
// each writes only clusters[w]. The bunches (the transpose of the cluster
// relation) are merged sequentially in root order afterwards, so the result
// is identical for every worker count.
func (l *Landmarks) buildClusters(g *graph.Graph) {
	n := g.N()
	l.clusters = make([][]Member, n)
	l.bunches = make([][]graph.Vertex, n)
	parallel.For(n, func(wi int) {
		w := graph.Vertex(wi)
		ws := g.AcquireWorkspace()
		defer g.ReleaseWorkspace(ws)
		ws.Start(w)
		var members []Member
		for {
			u, d, ok := ws.Pop()
			if !ok {
				break
			}
			members = append(members, Member{V: u, Dist: d, Parent: ws.Parent(u)})
			g.Neighbors(u, func(_ graph.Port, x graph.Vertex, ew float64) bool {
				nd := d + ew
				if nd >= l.DistA[x] { // cluster condition (strict)
					return true
				}
				ws.Relax(x, nd, u)
				return true
			})
		}
		l.clusters[wi] = members
	})
	for wi := 0; wi < n; wi++ {
		for _, m := range l.clusters[wi] {
			l.bunches[m.V] = append(l.bunches[m.V], graph.Vertex(wi))
		}
	}
	for v := range l.bunches {
		sort.Slice(l.bunches[v], func(i, j int) bool { return l.bunches[v][i] < l.bunches[v][j] })
	}
}

// InA reports whether v is a landmark.
func (l *Landmarks) InA(v graph.Vertex) bool { return l.inA[v] }

// Cluster returns C_A(w) with the root first. The slice is owned by l.
func (l *Landmarks) Cluster(w graph.Vertex) []Member { return l.clusters[w] }

// Bunch returns B_A(v) in increasing id order. The slice is owned by l.
func (l *Landmarks) Bunch(v graph.Vertex) []graph.Vertex { return l.bunches[v] }

// MaxClusterSize returns max_w |C_A(w)|.
func (l *Landmarks) MaxClusterSize() int {
	maxSz := 0
	for _, c := range l.clusters {
		if len(c) > maxSz {
			maxSz = len(c)
		}
	}
	return maxSz
}

// CenterCover implements Lemma 4: it returns Landmarks whose cluster sizes
// are all at most boundFactor*n/s (boundFactor = 4 matches the paper). The
// construction follows Thorup-Zwick's centers algorithm: repeatedly sample
// vertices whose clusters are still too large into A. A final deterministic
// step promotes any stragglers to landmarks (a landmark's cluster is just
// itself), so the returned set always satisfies the bound.
func CenterCover(g *graph.Graph, s int, seed int64) (*Landmarks, error) {
	l, _, err := CenterCoverTrace(g, s, seed)
	return l, err
}

// CoverRound records one effective sampling round of CenterCover: how many
// landmarks (in sampling order) were in A after the round's draws, and which
// roots' clusters still exceeded the bound under that intermediate set.
type CoverRound struct {
	ALen      int
	Oversized []graph.Vertex
}

// CoverTrace records the randomized trajectory of one CenterCover run. The
// sampling decisions are a pure function of the seed and of the sequence of
// oversized sets, so a run on a different graph produces the same landmark
// set if and only if every recorded round's oversized set is reproduced
// there - the check VerifyCoverTrace performs for the incremental repair
// path.
type CoverTrace struct {
	S      int
	Bound  int
	Order  []graph.Vertex // the final A in sampling order (prefixes = rounds)
	Rounds []CoverRound
}

// CenterCoverTrace is CenterCover recording the sampling trajectory.
func CenterCoverTrace(g *graph.Graph, s int, seed int64) (*Landmarks, *CoverTrace, error) {
	const boundFactor = 4
	n := g.N()
	if s < 1 {
		return nil, nil, fmt.Errorf("cluster: need s >= 1, got %d", s)
	}
	if s > n {
		s = n
	}
	bound := boundFactor * n / s
	if bound < 1 {
		bound = 1
	}
	trace := &CoverTrace{S: s, Bound: bound}
	r := rand.New(rand.NewSource(seed))
	inA := make([]bool, n)
	var a []graph.Vertex
	oversized := make([]graph.Vertex, n)
	for i := range oversized {
		oversized[i] = graph.Vertex(i)
	}
	var l *Landmarks
	maxRounds := 4*log2(n) + 8
	for round := 0; round < maxRounds && len(oversized) > 0; round++ {
		p := float64(s) / float64(len(oversized))
		if p > 1 {
			p = 1
		}
		grew := false
		for _, w := range oversized {
			if !inA[w] && r.Float64() < p {
				inA[w] = true
				a = append(a, w)
				grew = true
			}
		}
		if !grew && len(a) == 0 {
			continue
		}
		var err error
		l, err = New(g, a)
		if err != nil {
			return nil, nil, err
		}
		oversized = oversized[:0]
		for w := 0; w < n; w++ {
			if len(l.clusters[w]) > bound {
				oversized = append(oversized, graph.Vertex(w))
			}
		}
		if grew {
			trace.Rounds = append(trace.Rounds, CoverRound{
				ALen:      len(a),
				Oversized: append([]graph.Vertex(nil), oversized...),
			})
		}
	}
	if len(oversized) > 0 || l == nil {
		// Deterministic finish: promoting a vertex to landmark makes its own
		// cluster trivial and can only shrink others.
		for _, w := range oversized {
			if !inA[w] {
				inA[w] = true
				a = append(a, w)
			}
		}
		var err error
		l, err = New(g, a)
		if err != nil {
			return nil, nil, err
		}
		if got := l.MaxClusterSize(); got > bound {
			return nil, nil, fmt.Errorf("cluster: center cover failed, max cluster %d > bound %d", got, bound)
		}
	}
	trace.Order = append([]graph.Vertex(nil), a...)
	return l, trace, nil
}

func log2(n int) int {
	l := 0
	for x := 1; x < n; x *= 2 {
		l++
	}
	return l
}
