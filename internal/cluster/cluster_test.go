package cluster_test

import (
	"math"
	"testing"

	"compactroute/internal/cluster"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/testutil"
)

func landmarkSet(t *testing.T, g *graph.Graph, every int) []graph.Vertex {
	t.Helper()
	var a []graph.Vertex
	for v := 0; v < g.N(); v += every {
		a = append(a, graph.Vertex(v))
	}
	return a
}

func TestNearestLandmarkMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := testutil.MustGNM(t, 40, 100, seed, gen.UniformInt)
		want := testutil.FloydWarshall(g)
		a := landmarkSet(t, g, 5)
		l, err := cluster.New(g, a)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			bestD := math.Inf(1)
			best := graph.NoVertex
			for _, w := range a {
				d := want[v][w]
				if d < bestD || (d == bestD && w < best) {
					bestD, best = d, w
				}
			}
			if math.Abs(l.DistA[v]-bestD) > testutil.Eps || l.P[v] != best {
				t.Fatalf("seed %d: p_A(%d)=(%d,%v) want (%d,%v)", seed, v, l.P[v], l.DistA[v], best, bestD)
			}
		}
	}
}

func TestClustersMatchDefinition(t *testing.T) {
	g := testutil.MustGNM(t, 40, 100, 7, gen.UniformInt)
	want := testutil.FloydWarshall(g)
	a := landmarkSet(t, g, 4)
	l, err := cluster.New(g, a)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < g.N(); w++ {
		got := make(map[graph.Vertex]float64)
		for _, m := range l.Cluster(graph.Vertex(w)) {
			got[m.V] = m.Dist
		}
		for v := 0; v < g.N(); v++ {
			inDef := v == w || want[w][v] < l.DistA[v]-testutil.Eps
			d, inGot := got[graph.Vertex(v)]
			if inDef != inGot {
				t.Fatalf("C(%d) membership of %d: got %v want %v", w, v, inGot, inDef)
			}
			if inGot && math.Abs(d-want[w][v]) > testutil.Eps {
				t.Fatalf("C(%d) dist of %d wrong", w, v)
			}
		}
	}
}

// TestBunchClusterDuality checks w in B(v) iff v in C(w).
func TestBunchClusterDuality(t *testing.T) {
	g := testutil.MustGNM(t, 35, 80, 3, gen.Unit)
	l, err := cluster.New(g, landmarkSet(t, g, 6))
	if err != nil {
		t.Fatal(err)
	}
	inCluster := func(w, v graph.Vertex) bool {
		for _, m := range l.Cluster(w) {
			if m.V == v {
				return true
			}
		}
		return false
	}
	for v := 0; v < g.N(); v++ {
		inBunch := make(map[graph.Vertex]bool)
		for _, w := range l.Bunch(graph.Vertex(v)) {
			inBunch[w] = true
		}
		for w := 0; w < g.N(); w++ {
			if inBunch[graph.Vertex(w)] != inCluster(graph.Vertex(w), graph.Vertex(v)) {
				t.Fatalf("duality violated for v=%d w=%d", v, w)
			}
		}
	}
}

// TestClusterTreeIsShortestPathTree verifies parents form a tree inside the
// cluster along shortest paths from the root.
func TestClusterTreeIsShortestPathTree(t *testing.T) {
	g := testutil.MustGNM(t, 45, 120, 9, gen.UniformInt)
	want := testutil.FloydWarshall(g)
	l, err := cluster.New(g, landmarkSet(t, g, 7))
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < g.N(); w++ {
		members := l.Cluster(graph.Vertex(w))
		inC := make(map[graph.Vertex]bool, len(members))
		for _, m := range members {
			inC[m.V] = true
		}
		for _, m := range members {
			if m.V == graph.Vertex(w) {
				if m.Parent != graph.NoVertex {
					t.Fatalf("root %d has parent", w)
				}
				continue
			}
			if !inC[m.Parent] {
				t.Fatalf("parent %d of %d not inside C(%d)", m.Parent, m.V, w)
			}
			ew, err := g.EdgeWeight(m.Parent, m.V)
			if err != nil {
				t.Fatalf("tree link {%d,%d} not an edge", m.Parent, m.V)
			}
			if math.Abs(want[w][m.Parent]+ew-m.Dist) > testutil.Eps {
				t.Fatalf("tree path to %d in C(%d) is not shortest", m.V, w)
			}
		}
	}
}

func TestLandmarkClustersAreTrivial(t *testing.T) {
	g := testutil.MustGNM(t, 30, 70, 1, gen.Unit)
	a := landmarkSet(t, g, 3)
	l, err := cluster.New(g, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range a {
		c := l.Cluster(w)
		if len(c) != 1 || c[0].V != w {
			t.Fatalf("landmark %d has nontrivial cluster %v", w, c)
		}
		b := l.Bunch(w)
		if len(b) != 1 || b[0] != w {
			t.Fatalf("landmark %d has nontrivial bunch %v", w, b)
		}
	}
}

func TestCenterCoverBound(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := testutil.MustGNM(t, 120, 360, seed, gen.Unit)
		s := 12
		l, err := cluster.CenterCover(g, s, seed)
		if err != nil {
			t.Fatal(err)
		}
		bound := 4 * g.N() / s
		if got := l.MaxClusterSize(); got > bound {
			t.Fatalf("seed %d: max cluster %d > bound %d", seed, got, bound)
		}
		if len(l.A) == 0 {
			t.Fatal("empty landmark set")
		}
	}
}

func TestCenterCoverAllVertices(t *testing.T) {
	// s = n forces nearly every vertex to be a landmark; bound is 4.
	g := testutil.MustGNM(t, 40, 80, 2, gen.Unit)
	l, err := cluster.CenterCover(g, g.N(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.MaxClusterSize(); got > 4 {
		t.Fatalf("max cluster %d > 4", got)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	g := testutil.MustGNM(t, 10, 15, 0, gen.Unit)
	if _, err := cluster.New(g, nil); err == nil {
		t.Fatal("expected error for empty landmarks")
	}
	if _, err := cluster.New(g, []graph.Vertex{3, 3}); err == nil {
		t.Fatal("expected error for duplicate landmark")
	}
	if _, err := cluster.New(g, []graph.Vertex{99}); err == nil {
		t.Fatal("expected error for out-of-range landmark")
	}
}
