// Incremental repair of a landmark structure after edge updates. The
// landmark set A is kept fixed; only the derived state (p_A, d(., A),
// clusters, bunches) is brought up to date, and only the clusters that can
// have changed are recomputed. A cluster C_A(w) is a function of the graph,
// of w, and of the d(., A) row; its pruned Dijkstra can diverge from the old
// one only if the search crosses an updated edge or reads a changed d(x, A)
// value - in both cases the divergence point is a member of the old or the
// new cluster, so seeding the dirty-root set with the bunches of the update
// endpoints and of every vertex whose (p_A, d(., A)) entry changed covers
// every cluster that differs. Clean clusters share their member slices with
// the old structure.
package cluster

import (
	"fmt"
	"sort"

	"compactroute/internal/graph"
	"compactroute/internal/parallel"
)

// RepairLandmarks rebuilds the derived state of old over the updated graph
// g, recomputing only dirty clusters. touched lists the endpoints of every
// updated edge. The repaired structure is bit-identical to New(g, old.A);
// if some recomputed cluster exceeds bound (the Lemma 4 guarantee the fixed
// landmark set no longer provides on the new graph), an error is returned
// and the caller must escalate to a full rebuild (which re-runs the center
// cover). The returned slice holds the recomputed cluster roots in
// ascending order - the dirty-set size the repair stats report.
func RepairLandmarks(g *graph.Graph, old *Landmarks, touched []graph.Vertex, bound int) (*Landmarks, []graph.Vertex, error) {
	n := g.N()
	if len(old.P) != n {
		return nil, nil, fmt.Errorf("cluster: repair: graph has n=%d, structure has n=%d", n, len(old.P))
	}
	newP, newDistA, err := Nearest(g, old.A)
	if err != nil {
		return nil, nil, err
	}
	// Seeds: update endpoints plus every vertex whose nearest-landmark entry
	// moved. A clean cluster's pruned search never reads anything else that
	// changed.
	seedSet := make([]bool, n)
	var seeds []graph.Vertex
	addSeed := func(v graph.Vertex) {
		if v >= 0 && int(v) < n && !seedSet[v] {
			seedSet[v] = true
			seeds = append(seeds, v)
		}
	}
	for _, v := range touched {
		addSeed(v)
	}
	for v := 0; v < n; v++ {
		if newP[v] != old.P[v] || newDistA[v] != old.DistA[v] {
			addSeed(graph.Vertex(v))
		}
	}
	// Dirty roots: the old and the new bunch of every seed. The old bunch is
	// stored; the new bunch of v is the ball {w : d_new(v, w) < d_new(v, A)}
	// plus v itself, one pruned search per seed.
	dirtyRoot := make([]bool, n)
	var dirtyRoots []graph.Vertex
	markRoot := func(w graph.Vertex) {
		if !dirtyRoot[w] {
			dirtyRoot[w] = true
			dirtyRoots = append(dirtyRoots, w)
		}
	}
	for _, v := range seeds {
		for _, w := range old.bunches[v] {
			markRoot(w)
		}
		r := newDistA[v]
		ws := g.AcquireWorkspace()
		ws.Start(v)
		for {
			w, d, ok := ws.Pop()
			if !ok {
				break
			}
			markRoot(w)
			g.Neighbors(w, func(_ graph.Port, x graph.Vertex, ew float64) bool {
				if nd := d + ew; nd < r {
					ws.Relax(x, nd, w)
				}
				return true
			})
		}
		g.ReleaseWorkspace(ws)
	}
	sort.Slice(dirtyRoots, func(i, j int) bool { return dirtyRoots[i] < dirtyRoots[j] })

	l := &Landmarks{
		A:        old.A,
		inA:      old.inA,
		P:        newP,
		DistA:    newDistA,
		clusters: make([][]Member, n),
		bunches:  make([][]graph.Vertex, n),
	}
	copy(l.clusters, old.clusters)
	// Recompute dirty clusters with the exact buildClusters search (same
	// prune, same pop order) against the new d(., A) row.
	maxSz := make([]int, len(dirtyRoots))
	parallel.For(len(dirtyRoots), func(i int) {
		w := dirtyRoots[i]
		ws := g.AcquireWorkspace()
		defer g.ReleaseWorkspace(ws)
		ws.Start(w)
		var members []Member
		for {
			u, d, ok := ws.Pop()
			if !ok {
				break
			}
			members = append(members, Member{V: u, Dist: d, Parent: ws.Parent(u)})
			g.Neighbors(u, func(_ graph.Port, x graph.Vertex, ew float64) bool {
				nd := d + ew
				if nd >= l.DistA[x] { // cluster condition (strict)
					return true
				}
				ws.Relax(x, nd, u)
				return true
			})
		}
		l.clusters[w] = members
		maxSz[i] = len(members)
	})
	for i, sz := range maxSz {
		if sz > bound {
			return nil, nil, fmt.Errorf("cluster: repair: cluster C_A(%d) grew to %d > bound %d", dirtyRoots[i], sz, bound)
		}
	}
	// Bunches are the transpose of the cluster relation; rebuilding them all
	// sequentially in root order (as buildClusters does) is linear in the
	// total cluster size and keeps the result independent of which roots were
	// dirty.
	for wi := 0; wi < n; wi++ {
		for _, m := range l.clusters[wi] {
			l.bunches[m.V] = append(l.bunches[m.V], graph.Vertex(wi))
		}
	}
	for v := range l.bunches {
		sort.Slice(l.bunches[v], func(i, j int) bool { return l.bunches[v][i] < l.bunches[v][j] })
	}
	return l, dirtyRoots, nil
}

// ball marks (in out) every w with d_g(v, w) < r plus v itself - the bunch
// of v when r = d(v, A) - and appends the newly marked vertices to roots.
func ball(g *graph.Graph, v graph.Vertex, r float64, out []bool, roots []graph.Vertex) []graph.Vertex {
	ws := g.AcquireWorkspace()
	defer g.ReleaseWorkspace(ws)
	ws.Start(v)
	for {
		w, d, ok := ws.Pop()
		if !ok {
			return roots
		}
		if !out[w] {
			out[w] = true
			roots = append(roots, w)
		}
		g.Neighbors(w, func(_ graph.Port, x graph.Vertex, ew float64) bool {
			if nd := d + ew; nd < r {
				ws.Relax(x, nd, w)
			}
			return true
		})
	}
}

// clusterSize runs the pruned cluster search of root w against the given
// d(., A) row and returns |C_A(w)| - the exact size buildClusters would
// store.
func clusterSize(g *graph.Graph, w graph.Vertex, distA []float64) int {
	ws := g.AcquireWorkspace()
	defer g.ReleaseWorkspace(ws)
	ws.Start(w)
	size := 0
	for {
		u, d, ok := ws.Pop()
		if !ok {
			return size
		}
		size++
		g.Neighbors(u, func(_ graph.Port, x graph.Vertex, ew float64) bool {
			if nd := d + ew; nd < distA[x] {
				ws.Relax(x, nd, u)
			}
			return true
		})
	}
}

// VerifyCoverTrace checks that CenterCover with the recorded trajectory's
// seed would sample the exact same landmark set on the updated graph g as it
// did on oldG: the sampling decisions depend only on the per-round oversized
// sets, so it suffices that every recorded round's oversized set is
// reproduced on g. Per round, only the clusters an updated edge can have
// changed are re-measured (same dirtiness rule as RepairLandmarks, against
// the round's intermediate landmark prefix); an error means a from-scratch
// build would choose different landmarks and the caller must escalate.
func VerifyCoverTrace(oldG, g *graph.Graph, trace *CoverTrace, touched []graph.Vertex) error {
	if trace == nil {
		return fmt.Errorf("cluster: no cover trace recorded")
	}
	n := g.N()
	for ri, round := range trace.Rounds {
		if round.ALen < 1 || round.ALen > len(trace.Order) {
			return fmt.Errorf("cluster: cover trace round %d has bad prefix %d", ri, round.ALen)
		}
		aR := trace.Order[:round.ALen]
		oldP, oldDistA, err := Nearest(oldG, aR)
		if err != nil {
			return err
		}
		newP, newDistA, err := Nearest(g, aR)
		if err != nil {
			return err
		}
		seedSet := make([]bool, n)
		var seeds []graph.Vertex
		addSeed := func(v graph.Vertex) {
			if v >= 0 && int(v) < n && !seedSet[v] {
				seedSet[v] = true
				seeds = append(seeds, v)
			}
		}
		for _, v := range touched {
			addSeed(v)
		}
		for v := 0; v < n; v++ {
			if newP[v] != oldP[v] || newDistA[v] != oldDistA[v] {
				addSeed(graph.Vertex(v))
			}
		}
		dirty := make([]bool, n)
		var roots []graph.Vertex
		for _, v := range seeds {
			roots = ball(oldG, v, oldDistA[v], dirty, roots)
			roots = ball(g, v, newDistA[v], dirty, roots)
		}
		over := make([]bool, n)
		for _, w := range round.Oversized {
			over[w] = true
		}
		bad := make([]bool, len(roots))
		parallel.For(len(roots), func(i int) {
			w := roots[i]
			bad[i] = (clusterSize(g, w, newDistA) > trace.Bound) != over[w]
		})
		for i, b := range bad {
			if b {
				return fmt.Errorf("cluster: cover trace round %d diverges at root %d (oversized set changed)", ri, roots[i])
			}
		}
	}
	return nil
}
