package exact

import (
	"compactroute/internal/graph"
	"compactroute/internal/simnet"
	"compactroute/internal/wire"
)

// WireKindName is the registered snapshot kind of the exact baseline
// (legacy v1 layout; still decodable).
const WireKindName = "exact/v1"

// WireKindNameV2 is the v2 layout: the port matrix as one aligned
// fixed-width array whose rows alias the snapshot bytes on decode.
const WireKindNameV2 = "exact/v2"

func init() {
	wire.Register(WireKindName, decodeSnapshot)
	wire.Register(WireKindNameV2, decodeSnapshotV2)
}

const secPorts = "exact/ports"

// WireKind implements wire.Encodable.
func (s *Scheme) WireKind() string { return WireKindNameV2 }

// EncodeSnapshot implements wire.Encodable: the full n x n first-hop port
// matrix as one aligned array, row-major. The matrix is the entire serve
// state of the baseline, so a decoded scheme serves straight off the mapped
// file - nothing is copied to the heap.
func (s *Scheme) EncodeSnapshot(snap *wire.Snapshot) error {
	e := snap.AlignedSection(secPorts)
	n := len(s.ports)
	e.ArrayHeader(4, 4, n*n)
	for _, row := range s.ports {
		for _, p := range row {
			e.Port(p)
		}
	}
	return nil
}

func decodeSnapshot(g *graph.Graph, snap *wire.Snapshot) (simnet.Scheme, error) {
	d, err := snap.Decoder(secPorts)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if !d.Alloc(4 * int64(n) * int64(n)) {
		return nil, d.Err()
	}
	s := &Scheme{g: g, ports: make([][]graph.Port, n)}
	for u := 0; u < n; u++ {
		row := make([]graph.Port, n)
		deg := graph.Port(g.Degree(graph.Vertex(u)))
		for v := 0; v < n; v++ {
			p := d.Port()
			if p != graph.NoPort && (p < 0 || p >= deg) {
				d.Failf("port[%d][%d]=%d outside degree %d", u, v, p, deg)
				return nil, d.Err()
			}
			row[v] = p
		}
		s.ports[u] = row
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeSnapshotV2 reads the v2 port matrix. On a little-endian host the
// rows are subslices of one array aliasing the snapshot bytes; every port is
// still validated against its row vertex's degree before the scheme serves.
func decodeSnapshotV2(g *graph.Graph, snap *wire.Snapshot) (simnet.Scheme, error) {
	d, err := snap.Decoder(secPorts)
	if err != nil {
		return nil, err
	}
	n := g.N()
	all := d.PortArray()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if len(all) != n*n {
		d.Failf("port matrix holds %d entries, want %d x %d", len(all), n, n)
		return nil, d.Err()
	}
	if !d.Alloc(24 * int64(n)) { // row headers only; rows alias the snapshot
		return nil, d.Err()
	}
	s := &Scheme{g: g, ports: make([][]graph.Port, n)}
	for u := 0; u < n; u++ {
		row := all[u*n : (u+1)*n : (u+1)*n]
		deg := graph.Port(g.Degree(graph.Vertex(u)))
		for v, p := range row {
			if p != graph.NoPort && (p < 0 || p >= deg) {
				d.Failf("port[%d][%d]=%d outside degree %d", u, v, p, deg)
				return nil, d.Err()
			}
		}
		s.ports[u] = row
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
