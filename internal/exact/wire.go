package exact

import (
	"compactroute/internal/graph"
	"compactroute/internal/simnet"
	"compactroute/internal/wire"
)

// WireKindName is the registered snapshot kind of the exact baseline.
const WireKindName = "exact/v1"

func init() { wire.Register(WireKindName, decodeSnapshot) }

const secPorts = "exact/ports"

// WireKind implements wire.Encodable.
func (s *Scheme) WireKind() string { return WireKindName }

// EncodeSnapshot implements wire.Encodable: the full n x n first-hop port
// matrix, row by row.
func (s *Scheme) EncodeSnapshot(snap *wire.Snapshot) error {
	e := snap.Section(secPorts)
	for _, row := range s.ports {
		for _, p := range row {
			e.Port(p)
		}
	}
	return nil
}

func decodeSnapshot(g *graph.Graph, snap *wire.Snapshot) (simnet.Scheme, error) {
	d, err := snap.Decoder(secPorts)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if !d.Alloc(4 * int64(n) * int64(n)) {
		return nil, d.Err()
	}
	s := &Scheme{g: g, ports: make([][]graph.Port, n)}
	for u := 0; u < n; u++ {
		row := make([]graph.Port, n)
		deg := graph.Port(g.Degree(graph.Vertex(u)))
		for v := 0; v < n; v++ {
			p := d.Port()
			if p != graph.NoPort && (p < 0 || p >= deg) {
				d.Failf("port[%d][%d]=%d outside degree %d", u, v, p, deg)
				return nil, d.Err()
			}
			row[v] = p
		}
		s.ports[u] = row
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
