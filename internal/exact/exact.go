// Package exact implements the trivial stretch-1 baseline: every vertex
// stores the first-hop port of a shortest path to every destination (O(n)
// words per vertex). It anchors the space axis of the Table 1 reproduction.
package exact

import (
	"fmt"

	"compactroute/internal/graph"
	"compactroute/internal/simnet"
)

// Scheme is the full-table shortest-path routing scheme.
type Scheme struct {
	g     *graph.Graph
	ports [][]graph.Port // ports[u][v] = port of the first hop u->v
}

var _ simnet.ReusableScheme = (*Scheme)(nil)

// New preprocesses full routing tables: one shortest-path tree per vertex.
func New(g *graph.Graph) (*Scheme, error) {
	n := g.N()
	s := &Scheme{g: g, ports: make([][]graph.Port, n)}
	for u := 0; u < n; u++ {
		sp := g.ShortestPaths(graph.Vertex(u))
		row := make([]graph.Port, n)
		for v := 0; v < n; v++ {
			if v == u || sp.First[v] == graph.NoVertex {
				row[v] = graph.NoPort
				continue
			}
			p := g.PortTo(graph.Vertex(u), sp.First[v])
			if p == graph.NoPort {
				return nil, fmt.Errorf("exact: first hop %d of %d->%d is not a neighbor", sp.First[v], u, v)
			}
			row[v] = p
		}
		s.ports[u] = row
	}
	return s, nil
}

type packet struct {
	dst graph.Vertex
}

// Name implements simnet.Scheme.
func (s *Scheme) Name() string { return "exact" }

// Graph implements simnet.Scheme.
func (s *Scheme) Graph() *graph.Graph { return s.g }

// Prepare implements simnet.Scheme.
func (s *Scheme) Prepare(_, dst graph.Vertex) (simnet.Packet, error) {
	return &packet{dst: dst}, nil
}

// PrepareInto implements simnet.ReusableScheme.
func (s *Scheme) PrepareInto(scratch simnet.Packet, _, dst graph.Vertex) (simnet.Packet, error) {
	pk, ok := scratch.(*packet)
	if !ok {
		pk = &packet{}
	}
	pk.dst = dst
	return pk, nil
}

// Next implements simnet.Scheme. Successive first hops strictly decrease the
// remaining distance, so the concatenation is a shortest path.
func (s *Scheme) Next(at graph.Vertex, p simnet.Packet) (simnet.Decision, error) {
	pk := p.(*packet)
	if at == pk.dst {
		return simnet.Deliver(), nil
	}
	port := s.ports[at][pk.dst]
	if port == graph.NoPort {
		return simnet.Decision{}, fmt.Errorf("exact: %d unreachable from %d", pk.dst, at)
	}
	return simnet.Forward(port), nil
}

// HeaderWords implements simnet.Scheme.
func (s *Scheme) HeaderWords(simnet.Packet) int { return 1 }

// TableWords implements simnet.Scheme.
func (s *Scheme) TableWords(graph.Vertex) int { return s.g.N() - 1 }

// LabelWords implements simnet.Scheme.
func (s *Scheme) LabelWords(graph.Vertex) int { return 1 }

// StretchBound implements simnet.Scheme.
func (s *Scheme) StretchBound(d float64) float64 { return d }
