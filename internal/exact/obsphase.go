package exact

import (
	"compactroute/internal/obs"
	"compactroute/internal/simnet"
)

// RoutePhase implements simnet.PhaseReporter. The exact baseline forwards
// from the full next-hop table at every vertex; there is only one stage.
func (s *Scheme) RoutePhase(p simnet.Packet) obs.Phase {
	if _, ok := p.(*packet); !ok {
		return obs.PhaseNone
	}
	return obs.PhaseExact
}
