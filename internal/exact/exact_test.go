package exact_test

import (
	"math"
	"testing"

	"compactroute/internal/exact"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/simnet"
	"compactroute/internal/testutil"
)

func TestExactRoutesShortestPaths(t *testing.T) {
	g := testutil.MustGNM(t, 60, 150, 4, gen.UniformInt)
	apsp := graph.AllPairs(g)
	s, err := exact.New(g)
	if err != nil {
		t.Fatal(err)
	}
	nw := simnet.NewNetwork(s, simnet.WithPath())
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			res, err := nw.Route(graph.Vertex(u), graph.Vertex(v))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Weight-apsp.Dist(graph.Vertex(u), graph.Vertex(v))) > testutil.Eps {
				t.Fatalf("%d->%d routed %v want %v", u, v, res.Weight, apsp.Dist(graph.Vertex(u), graph.Vertex(v)))
			}
		}
	}
	if s.TableWords(0) != g.N()-1 {
		t.Fatalf("exact tables must be n-1 words")
	}
}
