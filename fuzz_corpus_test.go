package compactroute_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"compactroute"
)

var regenCorpus = flag.Bool("regen-fuzz-corpus", false,
	"rewrite testdata/fuzz/FuzzDecodeSnapshot seed files from the current encoders")

const corpusDir = "testdata/fuzz/FuzzDecodeSnapshot"

// corpusSchemes builds one snapshot-capable scheme per kind the CURRENT
// encoders emit (the v2 kinds), on the same tiny deterministic graphs the
// fuzz harness seeds with. The v1 kinds stay registered as decode-only
// compatibility; their seed files are frozen fixtures from the last
// v1-emitting build and are never rewritten by -regen-fuzz-corpus.
func corpusSchemes(t testing.TB) map[string]compactroute.Scheme {
	t.Helper()
	g, err := compactroute.GNM(24, 96, 1, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	gu, err := compactroute.GNM(24, 96, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	ps := compactroute.AllPairs(g)
	psu := compactroute.AllPairs(gu)
	out := map[string]compactroute.Scheme{}
	add := func(s compactroute.Scheme, err error) {
		if err != nil {
			t.Fatal(err)
		}
		kind := compactroute.SnapshotKind(s)
		if kind == "" {
			t.Fatalf("%s has no snapshot kind", s.Name())
		}
		out[kind] = s
	}
	add(compactroute.NewExact(g))
	add(compactroute.NewThorupZwick(g, compactroute.Options{K: 2, Seed: 1}))
	add(compactroute.NewTheorem11(g, ps, compactroute.Options{Eps: 0.5, Seed: 1}))
	add(compactroute.NewWarmup3(g, ps, compactroute.Options{Eps: 0.5, Seed: 1}))
	add(compactroute.NewTheorem10(gu, psu, compactroute.Options{Eps: 0.5, Seed: 1}))
	add(compactroute.NewTheorem13(gu, psu, compactroute.Options{Eps: 0.5, L: 2, Seed: 1}))
	add(compactroute.NewTheorem16(g, ps, compactroute.Options{Eps: 0.5, K: 3, Seed: 1}))
	add(compactroute.NewNameIndependent(g, ps, compactroute.Options{Eps: 0.5, Seed: 1}))
	return out
}

func corpusFileName(kind string) string {
	return "seed_" + strings.NewReplacer("/", "_", ".", "_").Replace(kind)
}

// encodeCorpusEntry renders data in the Go fuzzing corpus-file format.
func encodeCorpusEntry(data []byte) []byte {
	return []byte(fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data))
}

// decodeCorpusEntry parses a Go fuzzing corpus file holding one []byte value.
func decodeCorpusEntry(raw []byte) ([]byte, error) {
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		return nil, fmt.Errorf("not a v1 corpus file with one value (%d lines)", len(lines))
	}
	body := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		return nil, fmt.Errorf("unquote corpus value: %w", err)
	}
	return []byte(s), nil
}

// TestFuzzCorpusSeedsDecode pins the checked-in seed corpus of
// FuzzDecodeSnapshot: there is exactly one valid snapshot file per registered
// kind, each parses as a Go fuzz corpus entry, and each decodes back into a
// scheme of that kind. Run with -regen-fuzz-corpus after changing a wire
// format (a version bump) to rewrite the seeds.
func TestFuzzCorpusSeedsDecode(t *testing.T) {
	schemes := corpusSchemes(t)
	if *regenCorpus {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for kind, s := range schemes {
			var buf bytes.Buffer
			if err := compactroute.SaveScheme(&buf, s); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(corpusDir, corpusFileName(kind))
			if err := os.WriteFile(path, encodeCorpusEntry(buf.Bytes()), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d snapshot bytes)", path, buf.Len())
		}
	}

	kinds := compactroute.SnapshotKinds()
	var encodable int
	for _, kind := range kinds {
		if _, ok := schemes[kind]; ok {
			encodable++
		} else if !strings.HasSuffix(kind, "/v1") {
			t.Fatalf("registered kind %q is neither encodable by corpusSchemes nor a frozen v1 kind", kind)
		}
	}
	if encodable != len(schemes) {
		t.Fatalf("corpusSchemes builds %d kinds, only %d of them registered (%v)", len(schemes), encodable, kinds)
	}
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) {
			path := filepath.Join(corpusDir, corpusFileName(kind))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing seed corpus file (regenerate with -regen-fuzz-corpus): %v", err)
			}
			data, err := decodeCorpusEntry(raw)
			if err != nil {
				t.Fatal(err)
			}
			s, err := compactroute.LoadScheme(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("seed corpus snapshot does not decode: %v", err)
			}
			// A frozen v1 seed decodes into the same in-memory scheme type as
			// its v2 successor, and that type now reports the v2 kind.
			wantKind := kind
			if strings.HasSuffix(kind, "/v1") {
				wantKind = strings.TrimSuffix(kind, "/v1") + "/v2"
			}
			if got := compactroute.SnapshotKind(s); got != wantKind {
				t.Fatalf("seed decodes as kind %q, file for %q should yield %q", got, kind, wantKind)
			}
		})
	}
}
