package compactroute

import (
	"fmt"
	"math/rand"

	"compactroute/internal/simnet"
	"compactroute/internal/space"
)

// Evaluation summarizes routing quality and storage of one scheme over a set
// of source-destination pairs. It is the measurement unit behind every row
// of the Table 1 reproduction (see EXPERIMENTS.md).
type Evaluation struct {
	Scheme string
	Pairs  int
	// Stretch of routed paths over pairs at distance > 0.
	MaxStretch  float64
	MeanStretch float64
	// BoundViolations counts deliveries longer than the scheme's proved
	// StretchBound; it must be zero.
	BoundViolations int
	// MaxAdditive is max(routed - d) over unit-distance-scale graphs,
	// relevant for (alpha, beta) schemes.
	MaxAdditive float64
	MeanHops    float64
	// Tables summarizes per-vertex routing tables in words.
	Tables SpaceStats
	// MaxLabel and MaxHeader are the largest label and header observed.
	MaxLabel  int
	MaxHeader int
}

// SamplePairs draws count ordered pairs of distinct vertices uniformly at
// random, deterministically under seed.
func SamplePairs(n, count int, seed int64) [][2]Vertex {
	r := rand.New(rand.NewSource(seed))
	pairs := make([][2]Vertex, 0, count)
	for len(pairs) < count {
		u := Vertex(r.Intn(n))
		v := Vertex(r.Intn(n))
		if u != v {
			pairs = append(pairs, [2]Vertex{u, v})
		}
	}
	return pairs
}

// AllPairsList enumerates every ordered pair of distinct vertices.
func AllPairsList(n int) [][2]Vertex {
	pairs := make([][2]Vertex, 0, n*(n-1))
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				pairs = append(pairs, [2]Vertex{Vertex(u), Vertex(v)})
			}
		}
	}
	return pairs
}

// Evaluate routes every pair through the scheme and aggregates stretch,
// hops, header and storage statistics. A routing failure is returned as an
// error; stretch-bound violations are counted, not fatal.
func Evaluate(s Scheme, apsp *APSP, pairs [][2]Vertex) (Evaluation, error) {
	ev := Evaluation{Scheme: s.Name(), Pairs: len(pairs)}
	nw := simnet.NewNetwork(s)
	var stretchSum float64
	var stretchCnt int
	var hopsSum int
	for _, p := range pairs {
		res, err := nw.Route(p[0], p[1])
		if err != nil {
			return ev, fmt.Errorf("evaluate %s: %w", s.Name(), err)
		}
		d := apsp.Dist(p[0], p[1])
		if res.Weight > s.StretchBound(d)+1e-9 {
			ev.BoundViolations++
		}
		if d > 0 {
			str := res.Weight / d
			stretchSum += str
			stretchCnt++
			if str > ev.MaxStretch {
				ev.MaxStretch = str
			}
			if add := res.Weight - d; add > ev.MaxAdditive {
				ev.MaxAdditive = add
			}
		}
		hopsSum += res.Hops
		if res.HeaderWords > ev.MaxHeader {
			ev.MaxHeader = res.HeaderWords
		}
	}
	if stretchCnt > 0 {
		ev.MeanStretch = stretchSum / float64(stretchCnt)
	}
	if len(pairs) > 0 {
		ev.MeanHops = float64(hopsSum) / float64(len(pairs))
	}
	g := s.Graph()
	tables := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		tables[v] = s.TableWords(Vertex(v))
		if lw := s.LabelWords(Vertex(v)); lw > ev.MaxLabel {
			ev.MaxLabel = lw
		}
	}
	ev.Tables = space.Summarize(tables)
	return ev, nil
}

// Row renders the evaluation as one line of the Table 1 reproduction.
func (e Evaluation) Row() string {
	return fmt.Sprintf("%-22s pairs=%-6d stretch(max=%.3f mean=%.3f viol=%d) add(max=%.1f) tables(max=%d mean=%.0f) label<=%d header<=%d",
		e.Scheme, e.Pairs, e.MaxStretch, e.MeanStretch, e.BoundViolations, e.MaxAdditive,
		e.Tables.Max, e.Tables.Mean, e.MaxLabel, e.MaxHeader)
}
