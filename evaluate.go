package compactroute

import (
	"fmt"
	"math/rand"

	"compactroute/internal/parallel"
	"compactroute/internal/simnet"
	"compactroute/internal/space"
)

// Evaluation summarizes routing quality and storage of one scheme over a set
// of source-destination pairs. It is the measurement unit behind every row
// of the Table 1 reproduction (see EXPERIMENTS.md).
type Evaluation struct {
	Scheme string
	Pairs  int
	// Stretch of routed paths over pairs at distance > 0.
	MaxStretch  float64
	MeanStretch float64
	// BoundViolations counts deliveries longer than the scheme's proved
	// StretchBound; it must be zero.
	BoundViolations int
	// MaxAdditive is max(routed - d) over unit-distance-scale graphs,
	// relevant for (alpha, beta) schemes.
	MaxAdditive float64
	MeanHops    float64
	// Tables summarizes per-vertex routing tables in words.
	Tables SpaceStats
	// MaxLabel and MaxHeader are the largest label and header observed.
	MaxLabel  int
	MaxHeader int
}

// SamplePairs draws count ordered pairs of distinct vertices uniformly at
// random, deterministically under seed. Graphs with fewer than two vertices
// have no distinct pairs, so n < 2 (or count <= 0) returns an empty slice.
func SamplePairs(n, count int, seed int64) [][2]Vertex {
	if n < 2 || count <= 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	pairs := make([][2]Vertex, 0, count)
	for len(pairs) < count {
		u := Vertex(r.Intn(n))
		v := Vertex(r.Intn(n))
		if u != v {
			pairs = append(pairs, [2]Vertex{u, v})
		}
	}
	return pairs
}

// AllPairsList enumerates every ordered pair of distinct vertices.
func AllPairsList(n int) [][2]Vertex {
	pairs := make([][2]Vertex, 0, n*(n-1))
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				pairs = append(pairs, [2]Vertex{Vertex(u), Vertex(v)})
			}
		}
	}
	return pairs
}

// EvalOptions configures the batched evaluation engine.
type EvalOptions struct {
	// Workers is the number of routing workers; <= 0 selects the current
	// parallelism default (GOMAXPROCS, or the SetParallelism override).
	Workers int
}

// pairOutcome is the per-pair routing record a worker fills in. Every pair
// owns one slot, so workers never contend and the merge below can run over
// pair indices in order - the aggregation is bit-identical for every worker
// count. The true distance is looked up in the parallel phase too: against a
// LazyAPSP it may cost a shortest-path search, which must not serialize
// inside the merge loop.
type pairOutcome struct {
	weight float64
	hops   int
	header int
	dist   float64
}

// Evaluate routes every pair through the scheme and aggregates stretch,
// hops, header and storage statistics. A routing failure is returned as an
// error; stretch-bound violations are counted, not fatal. It is the
// single-worker fixed point of EvaluateBatched.
func Evaluate(s Scheme, paths PathSource, pairs [][2]Vertex) (Evaluation, error) {
	return EvaluateBatched(s, paths, pairs, EvalOptions{Workers: 1})
}

// EvaluateBatched is the batched evaluation engine: it shards pairs across
// opts.Workers routing workers, each routing its share through the scheme
// concurrently, and merges the per-pair outcomes deterministically (in pair
// order, the order the sequential path uses), so the returned Evaluation is
// identical to Evaluate for every worker count. A routing failure aborts the
// evaluation with the error of the lowest failing pair index.
//
// Prepare and Next of a preprocessed Scheme are read-only local computations
// (see simnet.Scheme), so a single Network is safely shared by all workers.
func EvaluateBatched(s Scheme, paths PathSource, pairs [][2]Vertex, opts EvalOptions) (Evaluation, error) {
	ev := Evaluation{Scheme: s.Name(), Pairs: len(pairs)}
	workers := opts.Workers
	if workers <= 0 {
		workers = parallel.Workers()
	}
	nw := simnet.NewNetwork(s)
	outcomes := make([]pairOutcome, len(pairs))
	if err := parallel.ForNErr(workers, len(pairs), func(i int) error {
		res, err := nw.Route(pairs[i][0], pairs[i][1])
		if err != nil {
			return fmt.Errorf("evaluate %s: %w", s.Name(), err)
		}
		outcomes[i] = pairOutcome{
			weight: res.Weight,
			hops:   res.Hops,
			header: res.HeaderWords,
			dist:   paths.Dist(pairs[i][0], pairs[i][1]),
		}
		return nil
	}); err != nil {
		return ev, err
	}
	// Deterministic merge in pair order.
	var stretchSum float64
	var stretchCnt int
	var hopsSum int
	for i := range pairs {
		o := outcomes[i]
		d := o.dist
		if o.weight > s.StretchBound(d)+1e-9 {
			ev.BoundViolations++
		}
		if d > 0 {
			str := o.weight / d
			stretchSum += str
			stretchCnt++
			if str > ev.MaxStretch {
				ev.MaxStretch = str
			}
			if add := o.weight - d; add > ev.MaxAdditive {
				ev.MaxAdditive = add
			}
		}
		hopsSum += o.hops
		if o.header > ev.MaxHeader {
			ev.MaxHeader = o.header
		}
	}
	if stretchCnt > 0 {
		ev.MeanStretch = stretchSum / float64(stretchCnt)
	}
	if len(pairs) > 0 {
		ev.MeanHops = float64(hopsSum) / float64(len(pairs))
	}
	// Storage accounting: per-vertex slots, merged in vertex order.
	g := s.Graph()
	tables := make([]int, g.N())
	labels := make([]int, g.N())
	parallel.ForN(workers, g.N(), func(v int) {
		tables[v] = s.TableWords(Vertex(v))
		labels[v] = s.LabelWords(Vertex(v))
	})
	for _, lw := range labels {
		if lw > ev.MaxLabel {
			ev.MaxLabel = lw
		}
	}
	ev.Tables = space.Summarize(tables)
	return ev, nil
}

// Row renders the evaluation as one line of the Table 1 reproduction.
func (e Evaluation) Row() string {
	return fmt.Sprintf("%-22s pairs=%-6d stretch(max=%.3f mean=%.3f viol=%d) add(max=%.1f) tables(max=%d mean=%.0f) label<=%d header<=%d",
		e.Scheme, e.Pairs, e.MaxStretch, e.MeanStretch, e.BoundViolations, e.MaxAdditive,
		e.Tables.Max, e.Tables.Mean, e.MaxLabel, e.MaxHeader)
}
