package compactroute

import (
	"errors"
	"fmt"
	"math/rand"

	"compactroute/internal/parallel"
	"compactroute/internal/serve"
	"compactroute/internal/space"
)

// Evaluation summarizes routing quality and storage of one scheme over a set
// of source-destination pairs. It is the measurement unit behind every row
// of the Table 1 reproduction (see EXPERIMENTS.md).
type Evaluation struct {
	Scheme string
	Pairs  int
	// Stretch of routed paths over pairs at distance > 0.
	MaxStretch  float64
	MeanStretch float64
	// BoundViolations counts deliveries longer than the scheme's proved
	// StretchBound; it must be zero.
	BoundViolations int
	// MaxAdditive is max(routed - d) over unit-distance-scale graphs,
	// relevant for (alpha, beta) schemes.
	MaxAdditive float64
	MeanHops    float64
	// Tables summarizes per-vertex routing tables in words.
	Tables SpaceStats
	// MaxLabel and MaxHeader are the largest label and header observed.
	MaxLabel  int
	MaxHeader int
}

// SamplePairs draws count ordered pairs of distinct vertices uniformly at
// random, deterministically under seed. Graphs with fewer than two vertices
// have no distinct pairs, so n < 2 (or count <= 0) returns an empty slice.
func SamplePairs(n, count int, seed int64) [][2]Vertex {
	if n < 2 || count <= 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	pairs := make([][2]Vertex, 0, count)
	for len(pairs) < count {
		u := Vertex(r.Intn(n))
		v := Vertex(r.Intn(n))
		if u != v {
			pairs = append(pairs, [2]Vertex{u, v})
		}
	}
	return pairs
}

// AllPairsList enumerates every ordered pair of distinct vertices.
func AllPairsList(n int) [][2]Vertex {
	pairs := make([][2]Vertex, 0, n*(n-1))
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				pairs = append(pairs, [2]Vertex{Vertex(u), Vertex(v)})
			}
		}
	}
	return pairs
}

// EvalOptions configures the batched evaluation engine.
type EvalOptions struct {
	// Workers is the number of routing workers; <= 0 selects the current
	// parallelism default (GOMAXPROCS, or the SetParallelism override).
	Workers int
}

// Evaluate routes every pair through the scheme and aggregates stretch,
// hops, header and storage statistics. A routing failure is returned as an
// error; stretch-bound violations are counted, not fatal. It is the
// single-worker fixed point of EvaluateBatched.
func Evaluate(s Scheme, paths PathSource, pairs [][2]Vertex) (Evaluation, error) {
	return EvaluateBatched(s, paths, pairs, EvalOptions{Workers: 1})
}

// EvaluateBatched is the batched evaluation engine, built as a client of
// the serving engine (internal/serve): pairs are served as one verified
// batch across opts.Workers shards - each shard owning its slots of the
// result slice - and the per-pair outcomes are merged deterministically in
// pair order, the order the sequential path uses, so the returned
// Evaluation is identical to Evaluate for every worker count. A routing
// failure aborts the evaluation with the error of the lowest failing pair
// index. The true distance of every pair is looked up in the parallel
// phase: against a LazyAPSP it may cost a shortest-path search, which must
// not serialize inside the merge loop.
func EvaluateBatched(s Scheme, paths PathSource, pairs [][2]Vertex, opts EvalOptions) (Evaluation, error) {
	ev := Evaluation{Scheme: s.Name(), Pairs: len(pairs)}
	workers := opts.Workers
	if workers <= 0 {
		workers = parallel.Workers()
	}
	eng, err := serve.New(s, serve.Options{Workers: workers, Verify: true, Paths: paths, FailFast: true})
	if err != nil {
		return ev, fmt.Errorf("evaluate %s: %w", s.Name(), err)
	}
	defer eng.Close()
	outcomes := eng.Query(pairs, nil)
	// Report the lowest-index real failure; ErrAborted marks pairs the
	// fail-fast batch skipped after that failure.
	var aborted error
	for i := range outcomes {
		if err := outcomes[i].Err; err != nil {
			if errors.Is(err, serve.ErrAborted) {
				if aborted == nil {
					aborted = err
				}
				continue
			}
			return ev, fmt.Errorf("evaluate %s: %w", s.Name(), err)
		}
	}
	if aborted != nil {
		// Unreachable unless Query aborts without a recorded cause; fail
		// rather than aggregate a partial batch.
		return ev, fmt.Errorf("evaluate %s: %w", s.Name(), aborted)
	}
	// Deterministic merge in pair order.
	var stretchSum float64
	var stretchCnt int
	var hopsSum int
	for i := range pairs {
		o := outcomes[i]
		d := o.Dist
		if o.Weight > s.StretchBound(d)+1e-9 {
			ev.BoundViolations++
		}
		if d > 0 {
			str := o.Weight / d
			stretchSum += str
			stretchCnt++
			if str > ev.MaxStretch {
				ev.MaxStretch = str
			}
			if add := o.Weight - d; add > ev.MaxAdditive {
				ev.MaxAdditive = add
			}
		}
		hopsSum += o.Hops
		if o.HeaderWords > ev.MaxHeader {
			ev.MaxHeader = o.HeaderWords
		}
	}
	if stretchCnt > 0 {
		ev.MeanStretch = stretchSum / float64(stretchCnt)
	}
	if len(pairs) > 0 {
		ev.MeanHops = float64(hopsSum) / float64(len(pairs))
	}
	// Storage accounting: per-vertex slots, merged in vertex order.
	g := s.Graph()
	tables := make([]int, g.N())
	labels := make([]int, g.N())
	parallel.ForN(workers, g.N(), func(v int) {
		tables[v] = s.TableWords(Vertex(v))
		labels[v] = s.LabelWords(Vertex(v))
	})
	for _, lw := range labels {
		if lw > ev.MaxLabel {
			ev.MaxLabel = lw
		}
	}
	ev.Tables = space.Summarize(tables)
	return ev, nil
}

// Row renders the evaluation as one line of the Table 1 reproduction.
func (e Evaluation) Row() string {
	return fmt.Sprintf("%-22s pairs=%-6d stretch(max=%.3f mean=%.3f viol=%d) add(max=%.1f) tables(max=%d mean=%.0f) label<=%d header<=%d",
		e.Scheme, e.Pairs, e.MaxStretch, e.MeanStretch, e.BoundViolations, e.MaxAdditive,
		e.Tables.Max, e.Tables.Mean, e.MaxLabel, e.MaxHeader)
}
