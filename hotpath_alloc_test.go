package compactroute_test

import (
	"testing"

	"compactroute"
)

// TestQueryHotPathAllocs pins the serving hot path at zero steady-state
// allocations (the serving counterpart of the search kernels'
// TestSearchKernelAllocsSteadyState): once the engine's workers have warmed
// their scratch packets and the result buffer is preallocated, neither the
// batched Query path nor the single-query Route path may allocate, for the
// headline scheme (thm11), the Thorup-Zwick baseline and the exact baseline.
func TestQueryHotPathAllocs(t *testing.T) {
	g, err := compactroute.GNM(96, 384, 3, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	ps := compactroute.AllPairs(g)
	builds := []struct {
		name  string
		build func() (compactroute.Scheme, error)
	}{
		{"exact", func() (compactroute.Scheme, error) { return compactroute.NewExact(g) }},
		{"tzroute", func() (compactroute.Scheme, error) {
			return compactroute.NewThorupZwick(g, compactroute.Options{K: 2, Seed: 3})
		}},
		{"thm11", func() (compactroute.Scheme, error) {
			return compactroute.NewTheorem11(g, ps, compactroute.Options{Eps: 0.5, Seed: 3})
		}},
	}
	for _, b := range builds {
		t.Run(b.name, func(t *testing.T) {
			s, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			eng, err := compactroute.NewServeEngine(s, compactroute.ServeOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			n := g.N()
			pairs := make([][2]compactroute.Vertex, 256)
			for i := range pairs {
				pairs[i] = [2]compactroute.Vertex{
					compactroute.Vertex((i * 7) % n),
					compactroute.Vertex((i*13 + 1) % n),
				}
			}
			out := make([]compactroute.ServeResult, len(pairs))

			// Warm up: workers allocate their scratch packets (and, for
			// thm11, the retained inter state) on the first batches.
			for i := 0; i < 4; i++ {
				eng.Query(pairs, out)
			}
			if allocs := testing.AllocsPerRun(20, func() {
				eng.Query(pairs, out)
			}); allocs != 0 {
				t.Errorf("Engine.Query (warm, preallocated out): %v allocs/op, want 0", allocs)
			}
			for i := range out {
				if out[i].Err != nil {
					t.Fatalf("pair %v failed: %v", pairs[i], out[i].Err)
				}
			}

			// The single-query path pools its scratch packet per engine.
			for i := 0; i < 32; i++ {
				eng.Route(pairs[i][0], pairs[i][1])
			}
			i := 0
			if allocs := testing.AllocsPerRun(20, func() {
				eng.Route(pairs[i%len(pairs)][0], pairs[i%len(pairs)][1])
				i++
			}); allocs != 0 {
				t.Errorf("Engine.Route (warm): %v allocs/op, want 0", allocs)
			}
		})
	}
}
