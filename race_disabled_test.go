//go:build !race

package compactroute_test

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
