package compactroute

import (
	"fmt"
	"io"
	"os"
	"sync"

	"compactroute/internal/graph"
	"compactroute/internal/live"
	"compactroute/internal/scheme5"
	"compactroute/internal/serve"
	"compactroute/internal/wire"
)

// Live serving re-exports: the churn-tolerant generation manager of
// internal/serve and the edge-delta machinery of internal/live behind it.
type (
	// LiveEngine serves route queries while the graph churns underneath
	// the preprocessed scheme: an edge-delta overlay records updates, an
	// overlay-patched router detours around dead edges (bounded local
	// search, exact fallback), and a background rebuild hot-swaps in a
	// fresh generation with an RCU-style pointer flip - queries are never
	// blocked on a rebuild.
	LiveEngine = serve.Live
	// LiveServeOptions configures a LiveEngine (workers, verification,
	// detour budget, the rebuild constructor).
	LiveServeOptions = serve.LiveOptions
	// LiveStats extends the serving statistics with churn counters:
	// overlay breakdown, dead-edge hits, detours, fallbacks, measured
	// staleness stretch, rebuilds and swaps.
	LiveStats = serve.LiveStats
	// LiveResult is the outcome of one overlay-patched route.
	LiveResult = live.Result
	// BuildFunc preprocesses a scheme for a (churned) graph; the live
	// engine calls it from the background rebuild goroutine.
	BuildFunc = serve.BuildFunc
	// RepairFunc incrementally repairs the serving scheme for the effective
	// graph instead of rebuilding it from scratch; the result must be
	// bit-identical to a full rebuild or error out (the engine escalates).
	RepairFunc = serve.RepairFunc
	// RepairPolicy decides when (*LiveEngine).Refresh repairs in place and
	// when it escalates to a full rebuild (delta size, staleness served,
	// time since the last full rebuild).
	RepairPolicy = serve.RepairPolicy
	// RepairInfo is the dirty-set footprint of one incremental repair.
	RepairInfo = serve.RepairInfo
	// EdgeUpdate is one edge mutation (weight change, insertion, deletion).
	EdgeUpdate = live.Update
	// EdgeOverlay is the edge-delta overlay over an immutable base graph.
	EdgeOverlay = live.Overlay
	// OverlayBreakdown classifies overlay entries (deleted / inserted /
	// reweighted).
	OverlayBreakdown = live.Breakdown
)

// SetEdgeWeight returns the update that changes the weight of {u, v} to w.
func SetEdgeWeight(u, v Vertex, w float64) EdgeUpdate { return live.SetWeight(u, v, w) }

// InsertEdge returns the update that inserts the edge {u, v} with weight w.
func InsertEdge(u, v Vertex, w float64) EdgeUpdate { return live.AddEdge(u, v, w) }

// RemoveEdge returns the update that deletes the edge {u, v}.
func RemoveEdge(u, v Vertex) EdgeUpdate { return live.DelEdge(u, v) }

// ServeLive wraps a preprocessed scheme in a live (churn-tolerant) serving
// engine. Apply churn with (*LiveEngine).ApplyUpdates, rebuild and hot-swap
// with Rebuild/RebuildAsync (LiveServeOptions.Build supplies the
// constructor), and read staleness-aware statistics with Stats.
func ServeLive(s Scheme, o LiveServeOptions) (*LiveEngine, error) {
	return serve.NewLive(s, o)
}

// DeletionTrace builds a deterministic churn trace that deletes ~frac of
// g's edges while keeping the graph connected - the reproducible workload
// of the -churn benchmark mode and the CI soak.
func DeletionTrace(g *Graph, frac float64, seed int64) []EdgeUpdate {
	return live.DeletionTrace(g, frac, seed)
}

// ChurnTrace builds a deterministic mixed churn trace (deletions, weight
// changes, insertions) of the given length.
func ChurnTrace(g *Graph, ops int, seed int64, maxWeight int) []EdgeUpdate {
	return live.ChurnTrace(g, ops, seed, maxWeight)
}

// SaveLiveState writes the full serving state of a live engine - the
// current generation's scheme snapshot plus the overlay journal - so a
// churned serving process can be restored exactly (scheme, delta and
// update version) by LoadLiveState. The scheme of the current generation
// must be snapshot-capable.
func SaveLiveState(w io.Writer, l *LiveEngine) error {
	s := l.Scheme()
	es, ok := s.(wire.Encodable)
	if !ok {
		return fmt.Errorf("compactroute: scheme %s (%T) has no snapshot support", s.Name(), s)
	}
	g := s.Graph()
	snap := wire.New(es.WireKind(), g.Fingerprint())
	wire.EncodeGraph(snap, g)
	if err := es.EncodeSnapshot(snap); err != nil {
		return fmt.Errorf("compactroute: encode %s snapshot: %w", s.Name(), err)
	}
	live.EncodeOverlay(snap, l.Overlay())
	if _, err := snap.WriteTo(w); err != nil {
		return fmt.Errorf("compactroute: write live snapshot: %w", err)
	}
	return nil
}

// LoadLiveState restores a live engine from a snapshot written by
// SaveLiveState: the scheme is decoded as usual, the overlay journal is
// replayed over its graph, and a fresh engine is started around both. A
// snapshot without an overlay journal (written by SaveScheme) loads as a
// clean live engine.
func LoadLiveState(r io.Reader, o LiveServeOptions) (*LiveEngine, error) {
	snap, err := wire.Read(r)
	if err != nil {
		return nil, err
	}
	s, err := decodeSnapshot(snap)
	if err != nil {
		return nil, err
	}
	var ov *live.Overlay
	if live.HasOverlay(snap) {
		ov, err = live.DecodeOverlay(snap, s.Graph())
		if err != nil {
			return nil, err
		}
	} else {
		ov = live.NewOverlay(s.Graph())
	}
	return serve.NewLiveWithOverlay(s, ov, o)
}

// SaveLiveStateFile is SaveLiveState into a file created (truncated) at
// path.
func SaveLiveStateFile(path string, l *LiveEngine) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveLiveState(f, l); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadLiveStateFile is LoadLiveState from the file at path.
func LoadLiveStateFile(path string, o LiveServeOptions) (*LiveEngine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := LoadLiveState(f, o)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// OpenLiveStateFile restores a live engine over a memory-mapped snapshot:
// the initial generation serves straight off the mapping (zero-copy aliased
// tables, pages shared across processes), and the engine munmaps it
// automatically - via the RCU generation refcount - once a rebuild has
// swapped in a fresh heap generation and every in-flight query on the
// mapped one has drained. Any Retire hook already set in o is replaced.
func OpenLiveStateFile(path string, o LiveServeOptions) (*LiveEngine, error) {
	m, err := wire.Map(path)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*LiveEngine, error) {
		m.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	snap, err := wire.Parse(m.Bytes())
	if err != nil {
		return fail(err)
	}
	s, err := decodeSnapshot(snap)
	if err != nil {
		return fail(err)
	}
	var ov *live.Overlay
	if live.HasOverlay(snap) {
		ov, err = live.DecodeOverlay(snap, s.Graph())
		if err != nil {
			return fail(err)
		}
	} else {
		ov = live.NewOverlay(s.Graph())
	}
	o.Retire = func() { m.Close() }
	l, err := serve.NewLiveWithOverlay(s, ov, o)
	if err != nil {
		return fail(err)
	}
	return l, nil
}

// lazyBuild is the default rebuild constructor factory used by the CLIs:
// it reconstructs the same scheme family with a lazy path source.
func lazyBuild(construct func(g *Graph, ps PathSource) (Scheme, error), budgetMiB int) BuildFunc {
	return func(g *graph.Graph) (Scheme, error) {
		return construct(g, NewLazyAPSP(g, int64(budgetMiB)<<20))
	}
}

// RebuildFuncFor returns a BuildFunc that reconstructs the scheme family of
// the given snapshot kind (see SnapshotKinds) on a churned graph, with the
// given construction options and a lazy path source bounded by budgetMiB.
// It returns an error for kinds with no registered rebuild recipe.
func RebuildFuncFor(kind string, o Options, budgetMiB int) (BuildFunc, error) {
	switch kind {
	case "exact/v1", "exact/v2":
		return lazyBuild(func(g *Graph, _ PathSource) (Scheme, error) { return NewExact(g) }, budgetMiB), nil
	case "tzroute/v1", "tzroute/v2":
		return lazyBuild(func(g *Graph, _ PathSource) (Scheme, error) { return NewThorupZwick(g, o) }, budgetMiB), nil
	case "thm10/v1", "thm10/v2":
		return lazyBuild(func(g *Graph, ps PathSource) (Scheme, error) { return NewTheorem10(g, ps, o) }, budgetMiB), nil
	case "thm11/v1", "thm11/v2":
		return lazyBuild(func(g *Graph, ps PathSource) (Scheme, error) { return NewTheorem11(g, ps, o) }, budgetMiB), nil
	default:
		return nil, fmt.Errorf("compactroute: no rebuild recipe for scheme kind %q", kind)
	}
}

// RepairFuncFor returns a coupled (build, repair) pair for scheme kinds
// with an incremental repair path - currently the Theorem 11 scheme. The
// two share repair state behind the scenes: the BuildFunc records the
// construction-time touch index alongside the scheme, and the RepairFunc
// repairs the most recently built scheme in place (dirty-set invalidation,
// bit-identical output). Repairing a scheme the pair did not build - e.g.
// one decoded from a snapshot, which carries no repair state - fails, and
// the live engine escalates to a full rebuild (which re-arms repair for
// every later delta). Use the returned functions as LiveServeOptions.Build
// and .Repair of the same engine.
func RepairFuncFor(kind string, o Options, budgetMiB int) (BuildFunc, RepairFunc, error) {
	switch kind {
	case "thm11/v1", "thm11/v2":
	default:
		return nil, nil, fmt.Errorf("compactroute: no repair recipe for scheme kind %q", kind)
	}
	params := scheme5.Params{Eps: o.eps(), VicinityFactor: o.VicinityFactor, Seed: o.Seed}
	var (
		mu  sync.Mutex
		cur *scheme5.Repairable
	)
	build := func(g *graph.Graph) (Scheme, error) {
		r, err := scheme5.NewRepairable(g, NewLazyAPSP(g, int64(budgetMiB)<<20), params)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		cur = r
		mu.Unlock()
		return r.Scheme(), nil
	}
	repair := func(old Scheme, g *graph.Graph, entries []live.Entry) (Scheme, RepairInfo, error) {
		var info RepairInfo
		mu.Lock()
		r := cur
		mu.Unlock()
		if r == nil || old != Scheme(r.Scheme()) {
			return nil, info, fmt.Errorf("compactroute: %w for the serving scheme", scheme5.ErrNotRepairable)
		}
		edges := make([][2]graph.Vertex, len(entries))
		for i, e := range entries {
			edges[i] = [2]graph.Vertex{e.U, e.V}
		}
		next, st, err := r.Repair(g, NewLazyAPSP(g, int64(budgetMiB)<<20), edges)
		if err != nil {
			return nil, info, err
		}
		mu.Lock()
		cur = next
		mu.Unlock()
		info = RepairInfo{Edges: st.Edges, DirtyVics: st.DirtyVics, ChangedVics: st.ChangedVics,
			DirtyClusters: st.DirtyClusters, DirtySeqs: st.DirtySeqs, DirtyLabels: st.DirtyLabels}
		return next.Scheme(), info, nil
	}
	return build, repair, nil
}
