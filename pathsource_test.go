package compactroute_test

import (
	"fmt"
	"reflect"
	"testing"

	"compactroute"
)

// eqRow names one public constructor for the dense/lazy equivalence sweep.
type eqRow struct {
	name     string
	weighted bool
	build    func(g *compactroute.Graph, ps compactroute.PathSource) (compactroute.Scheme, error)
}

func equivalenceRows() []eqRow {
	opt := compactroute.Options{Eps: 0.5, Seed: benchSeed}
	return []eqRow{
		{"warmup3", true, func(g *compactroute.Graph, ps compactroute.PathSource) (compactroute.Scheme, error) {
			return compactroute.NewWarmup3(g, ps, opt)
		}},
		{"thm10", false, func(g *compactroute.Graph, ps compactroute.PathSource) (compactroute.Scheme, error) {
			return compactroute.NewTheorem10(g, ps, opt)
		}},
		{"thm11", true, func(g *compactroute.Graph, ps compactroute.PathSource) (compactroute.Scheme, error) {
			return compactroute.NewTheorem11(g, ps, opt)
		}},
		{"thm13-l2", false, func(g *compactroute.Graph, ps compactroute.PathSource) (compactroute.Scheme, error) {
			return compactroute.NewTheorem13(g, ps, compactroute.Options{Eps: 0.5, Seed: benchSeed, L: 2})
		}},
		{"thm15-l2", false, func(g *compactroute.Graph, ps compactroute.PathSource) (compactroute.Scheme, error) {
			return compactroute.NewTheorem15(g, ps, compactroute.Options{Eps: 0.5, Seed: benchSeed, L: 2})
		}},
		{"thm16-k3", true, func(g *compactroute.Graph, ps compactroute.PathSource) (compactroute.Scheme, error) {
			return compactroute.NewTheorem16(g, ps, compactroute.Options{Eps: 0.5, Seed: benchSeed, K: 3})
		}},
		{"nameind", true, func(g *compactroute.Graph, ps compactroute.PathSource) (compactroute.Scheme, error) {
			return compactroute.NewNameIndependent(g, ps, opt)
		}},
	}
}

// equivalenceGraphs builds the seeded graph families of the acceptance
// criterion: G(n, m), grid, and preferential attachment.
func equivalenceGraphs(t *testing.T, weighted bool) map[string]*compactroute.Graph {
	t.Helper()
	out := make(map[string]*compactroute.Graph)
	gnm, err := compactroute.GNM(96, 4*96, benchSeed, weighted, 32)
	if err != nil {
		t.Fatal(err)
	}
	out["gnm"] = gnm
	if !testing.Short() {
		grid, err := compactroute.Grid(9, 10, false, benchSeed, weighted)
		if err != nil {
			t.Fatal(err)
		}
		out["grid"] = grid
		pa, err := compactroute.PreferentialAttachment(90, 3, benchSeed, weighted)
		if err != nil {
			t.Fatal(err)
		}
		out["pa"] = pa
	}
	return out
}

// TestDeterminismLazyDenseEquivalence is the acceptance criterion of the
// pluggable-PathSource refactor: for every scheme constructor, building from
// DenseAPSP and from LazyAPSP (with a cache budget small enough to force
// evictions throughout construction) produces identical routing tables,
// labels, routed paths and Evaluation results on seeded G(n, m), grid and
// preferential-attachment graphs.
func TestDeterminismLazyDenseEquivalence(t *testing.T) {
	for _, row := range equivalenceRows() {
		for gname, g := range equivalenceGraphs(t, row.weighted) {
			t.Run(fmt.Sprintf("%s/%s", row.name, gname), func(t *testing.T) {
				n := g.N()
				dense := compactroute.AllPairs(g)
				// A ~6-row budget clamps the 16-shard default to one row per
				// shard (16 retained rows for ~96 sources): construction
				// constantly recomputes and evicts rows.
				lazy := compactroute.NewLazyAPSP(g, 6*(12*int64(n)+96))
				sd, err := row.build(g, dense)
				if err != nil {
					t.Fatalf("dense build: %v", err)
				}
				sl, err := row.build(g, lazy)
				if err != nil {
					t.Fatalf("lazy build: %v", err)
				}
				for v := 0; v < n; v++ {
					if dw, lw := sd.TableWords(compactroute.Vertex(v)), sl.TableWords(compactroute.Vertex(v)); dw != lw {
						t.Fatalf("TableWords(%d): dense %d lazy %d", v, dw, lw)
					}
					if dl, ll := sd.LabelWords(compactroute.Vertex(v)), sl.LabelWords(compactroute.Vertex(v)); dl != ll {
						t.Fatalf("LabelWords(%d): dense %d lazy %d", v, dl, ll)
					}
				}
				pairs := compactroute.SamplePairs(n, 300, benchSeed+3)
				evd, err := compactroute.EvaluateBatched(sd, dense, pairs, compactroute.EvalOptions{})
				if err != nil {
					t.Fatalf("dense evaluate: %v", err)
				}
				evl, err := compactroute.EvaluateBatched(sl, lazy, pairs, compactroute.EvalOptions{})
				if err != nil {
					t.Fatalf("lazy evaluate: %v", err)
				}
				if !reflect.DeepEqual(evd, evl) {
					t.Fatalf("Evaluations diverge:\ndense: %+v\nlazy:  %+v", evd, evl)
				}
				// Hop-by-hop paths must match exactly, not just in weight.
				nwd := compactroute.NewNetworkWithPath(sd)
				nwl := compactroute.NewNetworkWithPath(sl)
				for _, p := range pairs[:40] {
					rd, err := nwd.Route(p[0], p[1])
					if err != nil {
						t.Fatalf("dense route %v: %v", p, err)
					}
					rl, err := nwl.Route(p[0], p[1])
					if err != nil {
						t.Fatalf("lazy route %v: %v", p, err)
					}
					if !reflect.DeepEqual(rd.Path, rl.Path) {
						t.Fatalf("paths diverge for %v:\ndense %v\nlazy  %v", p, rd.Path, rl.Path)
					}
				}
			})
		}
	}
}

// TestSamplePairsDegenerate is the regression test for the SamplePairs
// infinite loop: a graph with fewer than two vertices has no distinct ordered
// pairs, so any requested count must yield an empty sample instead of
// spinning forever.
func TestSamplePairsDegenerate(t *testing.T) {
	for _, n := range []int{0, 1} {
		if got := compactroute.SamplePairs(n, 10, 1); len(got) != 0 {
			t.Fatalf("SamplePairs(%d, 10) = %v, want empty", n, got)
		}
	}
	if got := compactroute.SamplePairs(10, 0, 1); len(got) != 0 {
		t.Fatalf("SamplePairs(10, 0) = %v, want empty", got)
	}
	if got := compactroute.SamplePairs(10, -3, 1); len(got) != 0 {
		t.Fatalf("SamplePairs(10, -3) = %v, want empty", got)
	}
	pairs := compactroute.SamplePairs(10, 25, 7)
	if len(pairs) != 25 {
		t.Fatalf("SamplePairs(10, 25) returned %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatalf("sampled identical pair %v", p)
		}
	}
	if !reflect.DeepEqual(pairs, compactroute.SamplePairs(10, 25, 7)) {
		t.Fatal("SamplePairs not deterministic under a fixed seed")
	}
}
