package compactroute_test

import (
	"bytes"
	"testing"

	"compactroute"
)

// newLiveThm11 builds a small thm11 live engine with a rebuild recipe.
func newLiveThm11(t *testing.T, n int, o compactroute.LiveServeOptions) *compactroute.LiveEngine {
	t.Helper()
	g, err := compactroute.GNM(n, 4*n, benchSeed, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	s, err := compactroute.NewTheorem11(g, compactroute.AllPairs(g), compactroute.Options{Eps: 0.5, Seed: benchSeed})
	if err != nil {
		t.Fatal(err)
	}
	if o.Build == nil {
		build, err := compactroute.RebuildFuncFor("thm11/v1", compactroute.Options{Eps: 0.5, Seed: benchSeed}, 64)
		if err != nil {
			t.Fatal(err)
		}
		o.Build = build
	}
	l, err := compactroute.ServeLive(s, o)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestServeLivePublicAPI drives the exported surface end to end: updates,
// degraded serving, rebuild+swap, recovered serving.
func TestServeLivePublicAPI(t *testing.T) {
	const n = 120
	l := newLiveThm11(t, n, compactroute.LiveServeOptions{Workers: 2, Verify: true})
	g := l.Scheme().Graph()
	trace := compactroute.DeletionTrace(g, 0.08, 3)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if err := l.ApplyUpdates(trace); err != nil {
		t.Fatal(err)
	}
	pairs := compactroute.SamplePairs(n, 400, benchSeed)
	for _, r := range l.Query(pairs, nil) {
		if r.Err != nil {
			t.Fatalf("degraded query: %v", r.Err)
		}
	}
	st := l.Stats()
	if st.BoundViolations != 0 {
		t.Fatalf("degraded phase charged %d violations", st.BoundViolations)
	}
	if st.Overlay.Deleted != len(trace) {
		t.Fatalf("overlay breakdown %+v, want %d deletions", st.Overlay, len(trace))
	}
	if err := l.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if l.Generation() != 1 || !l.Overlay().Empty() {
		t.Fatalf("after rebuild: generation %d, overlay %d entries", l.Generation(), l.Overlay().Len())
	}
	for _, r := range l.Query(pairs[:100], nil) {
		if r.Err != nil || r.Stale() {
			t.Fatalf("recovered query: %+v", r)
		}
	}
}

// TestLiveStateRoundTrip: a churned serving state (scheme + overlay
// journal) survives save/load exactly - same generation graph, same
// overlay entries and version, same routing answers.
func TestLiveStateRoundTrip(t *testing.T) {
	const n = 100
	l := newLiveThm11(t, n, compactroute.LiveServeOptions{Workers: 2, Verify: true})
	g := l.Scheme().Graph()
	if err := l.ApplyUpdates(compactroute.ChurnTrace(g, 25, 9, 8)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compactroute.SaveLiveState(&buf, l); err != nil {
		t.Fatal(err)
	}
	build, err := compactroute.RebuildFuncFor("thm11/v1", compactroute.Options{Eps: 0.5, Seed: benchSeed}, 64)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := compactroute.LoadLiveState(bytes.NewReader(buf.Bytes()),
		compactroute.LiveServeOptions{Workers: 2, Verify: true, Build: build})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Scheme().Graph().Fingerprint() != g.Fingerprint() {
		t.Fatal("restored base graph differs")
	}
	wantOv, gotOv := l.Overlay(), restored.Overlay()
	if wantOv.Version() != gotOv.Version() || wantOv.Len() != gotOv.Len() {
		t.Fatalf("overlay (version %d, len %d) != (version %d, len %d)",
			gotOv.Version(), gotOv.Len(), wantOv.Version(), wantOv.Len())
	}
	a, b := wantOv.Entries(), gotOv.Entries()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("overlay entry %d: %+v != %+v", i, b[i], a[i])
		}
	}
	for _, p := range compactroute.SamplePairs(n, 200, 5) {
		ra := l.Route(p[0], p[1])
		rb := restored.Route(p[0], p[1])
		if ra.Err != nil || rb.Err != nil {
			t.Fatalf("pair %v: %v / %v", p, ra.Err, rb.Err)
		}
		if ra.Hops != rb.Hops || ra.Weight != rb.Weight || ra.Fallback != rb.Fallback {
			t.Fatalf("pair %v: original (%d, %v, %v) restored (%d, %v, %v)",
				p, ra.Hops, ra.Weight, ra.Fallback, rb.Hops, rb.Weight, rb.Fallback)
		}
	}
	// A plain scheme snapshot (no journal) loads as a clean live engine.
	var plain bytes.Buffer
	if err := compactroute.SaveScheme(&plain, l.Scheme()); err != nil {
		t.Fatal(err)
	}
	clean, err := compactroute.LoadLiveState(bytes.NewReader(plain.Bytes()), compactroute.LiveServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Overlay().Empty() {
		t.Fatal("plain snapshot restored a non-empty overlay")
	}
	// An engine whose scheme has no snapshot support refuses to save.
	// Every built-in scheme has a codec now, so hide it behind plainScheme.
	gq, err := compactroute.GNM(40, 160, 1, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	ni, err := compactroute.NewNameIndependent(gq, compactroute.AllPairs(gq), compactroute.Options{Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := compactroute.ServeLive(plainScheme{ni}, compactroute.LiveServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := compactroute.SaveLiveState(&bytes.Buffer{}, wl); err == nil {
		t.Fatal("SaveLiveState accepted a scheme without snapshot support")
	}
}

func TestRebuildFuncForUnknownKind(t *testing.T) {
	if _, err := compactroute.RebuildFuncFor("nope/v1", compactroute.Options{}, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
