package compactroute_test

// This file regenerates the paper's evaluation. The paper is pure theory;
// its only "table" is Table 1 (stretch / table-size tradeoffs), which the
// benchmarks below realize empirically on synthetic graphs. Each benchmark
// corresponds to one experiment id of DESIGN.md / EXPERIMENTS.md:
//
//	BenchmarkTable1          - T1:  every Table 1 row (ours + baselines)
//	BenchmarkSpaceScaling    - E2:  growth exponent of table words vs n
//	BenchmarkLemma7Sweep     - E3:  technique 1 in isolation vs eps
//	BenchmarkLemma8Sweep     - E4:  technique 2 in isolation vs eps
//	BenchmarkOracleVsRouting - E5:  distance-oracle gap
//	BenchmarkSequenceBudget  - E6:  ablation of the b = ceil(2/eps) budget
//	BenchmarkHittingSet      - E7:  greedy vs sampled hitting sets
//	BenchmarkAdjacentPairs   - E8:  Delta=1 degenerate cases of Thms 13/15
//	BenchmarkHeaderSize      - E9:  header high-water marks vs eps
//	BenchmarkParallelPipeline - E10: construction + batched-evaluation
//	                           wall-clock vs worker count
//	BenchmarkLazyScaling     - E11: construction through LazyAPSP at sizes
//	                           where the dense matrices are prohibitive
//	BenchmarkThm11Construction - E12: end-to-end preprocessing wall-clock,
//	                           the construction row of BENCH_pr3.json (the
//	                           kernel rows live in internal/graph)
//
// Metrics are attached with b.ReportMetric; the timed loop measures per-hop
// routing throughput of the preprocessed scheme.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"compactroute"
	"compactroute/internal/coloring"
	"compactroute/internal/core"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/hitting"
	"compactroute/internal/oracle"
	"compactroute/internal/simnet"
	"compactroute/internal/vicinity"
)

const (
	benchN     = 512
	benchSeed  = 2015 // PODC'15
	benchEps   = 0.25
	benchPairs = 2000
)

// builtScheme caches heavy preprocessing across benchmark reruns.
type builtScheme struct {
	scheme compactroute.Scheme
	apsp   *compactroute.APSP
	eval   compactroute.Evaluation
}

var benchCache sync.Map

type benchRow struct {
	name     string
	weighted bool
	build    func(g *compactroute.Graph, apsp *compactroute.APSP) (compactroute.Scheme, error)
}

func table1Rows() []benchRow {
	opt := compactroute.Options{Eps: benchEps, Seed: benchSeed}
	return []benchRow{
		{"exact-baseline", false, func(g *compactroute.Graph, _ *compactroute.APSP) (compactroute.Scheme, error) {
			return compactroute.NewExact(g)
		}},
		{"tz-k2-stretch3", true, func(g *compactroute.Graph, _ *compactroute.APSP) (compactroute.Scheme, error) {
			return compactroute.NewThorupZwick(g, compactroute.Options{K: 2, Seed: benchSeed})
		}},
		{"tz-k3-stretch7", true, func(g *compactroute.Graph, _ *compactroute.APSP) (compactroute.Scheme, error) {
			return compactroute.NewThorupZwick(g, compactroute.Options{K: 3, Seed: benchSeed})
		}},
		{"warmup-3+eps", true, func(g *compactroute.Graph, a *compactroute.APSP) (compactroute.Scheme, error) {
			return compactroute.NewWarmup3(g, a, opt)
		}},
		{"thm10-2+eps,1", false, func(g *compactroute.Graph, a *compactroute.APSP) (compactroute.Scheme, error) {
			return compactroute.NewTheorem10(g, a, opt)
		}},
		{"thm13-l3-2.33+eps,2", false, func(g *compactroute.Graph, a *compactroute.APSP) (compactroute.Scheme, error) {
			return compactroute.NewTheorem13(g, a, compactroute.Options{Eps: benchEps, Seed: benchSeed, L: 3})
		}},
		{"thm15-l2-4+eps,2", false, func(g *compactroute.Graph, a *compactroute.APSP) (compactroute.Scheme, error) {
			return compactroute.NewTheorem15(g, a, compactroute.Options{Eps: benchEps, Seed: benchSeed, L: 2})
		}},
		{"thm11-5+eps", true, func(g *compactroute.Graph, a *compactroute.APSP) (compactroute.Scheme, error) {
			return compactroute.NewTheorem11(g, a, opt)
		}},
		{"thm16-k4-9+eps", true, func(g *compactroute.Graph, a *compactroute.APSP) (compactroute.Scheme, error) {
			return compactroute.NewTheorem16(g, a, compactroute.Options{Eps: benchEps, Seed: benchSeed, K: 4})
		}},
	}
}

func benchGraph(b *testing.B, n int, weighted bool) (*compactroute.Graph, *compactroute.APSP) {
	b.Helper()
	key := fmt.Sprintf("graph/%d/%v", n, weighted)
	if v, ok := benchCache.Load(key); ok {
		pair := v.([2]interface{})
		return pair[0].(*compactroute.Graph), pair[1].(*compactroute.APSP)
	}
	g, err := compactroute.GNM(n, 4*n, benchSeed, weighted, 32)
	if err != nil {
		b.Fatal(err)
	}
	apsp := compactroute.AllPairs(g)
	benchCache.Store(key, [2]interface{}{g, apsp})
	return g, apsp
}

func builtRow(b *testing.B, n int, row benchRow) *builtScheme {
	b.Helper()
	key := fmt.Sprintf("row/%d/%s", n, row.name)
	if v, ok := benchCache.Load(key); ok {
		return v.(*builtScheme)
	}
	g, apsp := benchGraph(b, n, row.weighted)
	s, err := row.build(g, apsp)
	if err != nil {
		b.Fatalf("%s: %v", row.name, err)
	}
	ev, err := compactroute.Evaluate(s, apsp, compactroute.SamplePairs(n, benchPairs, benchSeed))
	if err != nil {
		b.Fatalf("%s: %v", row.name, err)
	}
	if ev.BoundViolations != 0 {
		b.Fatalf("%s: %d stretch-bound violations", row.name, ev.BoundViolations)
	}
	bs := &builtScheme{scheme: s, apsp: apsp, eval: ev}
	benchCache.Store(key, bs)
	return bs
}

func reportEval(b *testing.B, ev compactroute.Evaluation) {
	b.Helper()
	b.ReportMetric(ev.MaxStretch, "max-stretch")
	b.ReportMetric(ev.MeanStretch, "mean-stretch")
	b.ReportMetric(ev.MaxAdditive, "max-additive")
	b.ReportMetric(float64(ev.Tables.Max), "table-max-words")
	b.ReportMetric(ev.Tables.Mean, "table-mean-words")
	b.ReportMetric(float64(ev.MaxLabel), "label-words")
	b.ReportMetric(float64(ev.MaxHeader), "header-max-words")
}

// BenchmarkTable1 regenerates every row of Table 1: measured stretch and
// per-vertex table words per scheme, plus routing throughput.
func BenchmarkTable1(b *testing.B) {
	for _, row := range table1Rows() {
		b.Run(row.name, func(b *testing.B) {
			bs := builtRow(b, benchN, row)
			nw := compactroute.NewNetwork(bs.scheme)
			pairs := compactroute.SamplePairs(benchN, 1024, benchSeed+1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Route(pairs[i%len(pairs)][0], pairs[i%len(pairs)][1]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportEval(b, bs.eval) // after the timed loop: ResetTimer clears metrics
		})
	}
}

// BenchmarkSpaceScaling fits the growth exponent of mean table words
// against n for the schemes with clean power-law predictions (Table 1's
// space column): thm10 ~ n^{2/3}, thm11 ~ n^{1/3}, warmup ~ n^{1/2},
// thm16-k4 ~ n^{1/4}, tz-k2 ~ n^{1/2}, tz-k3 ~ n^{1/3}.
func BenchmarkSpaceScaling(b *testing.B) {
	ns := []int{128, 256, 512, 1024}
	rows := []struct {
		row      benchRow
		expected float64
	}{
		{table1Rows()[1], 0.5},    // tz-k2
		{table1Rows()[2], 1. / 3}, // tz-k3
		{table1Rows()[3], 0.5},    // warmup
		{table1Rows()[4], 2. / 3}, // thm10
		{table1Rows()[7], 1. / 3}, // thm11
		{table1Rows()[8], 0.25},   // thm16-k4
	}
	for _, r := range rows {
		b.Run(r.row.name, func(b *testing.B) {
			xs := make([]float64, 0, len(ns))
			ys := make([]float64, 0, len(ns))
			for _, n := range ns {
				bs := builtRow(b, n, r.row)
				xs = append(xs, float64(n))
				ys = append(ys, bs.eval.Tables.Mean)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = compactroute.FitExponent(xs, ys)
			}
			b.StopTimer()
			b.ReportMetric(compactroute.FitExponent(xs, ys), "fitted-exponent")
			b.ReportMetric(r.expected, "paper-exponent")
		})
	}
}

// lemmaFixture builds the shared inputs of the technique benchmarks.
type lemmaFixture struct {
	g      *graph.Graph
	apsp   *graph.APSP
	vics   []*vicinity.Set
	partOf []int32
	col    *coloring.Coloring
	q      int
}

func lemmaSetup(b *testing.B, n, q int, weighted bool) *lemmaFixture {
	b.Helper()
	key := fmt.Sprintf("lemma/%d/%d/%v", n, q, weighted)
	if v, ok := benchCache.Load(key); ok {
		return v.(*lemmaFixture)
	}
	wt := gen.Unit
	if weighted {
		wt = gen.UniformInt
	}
	g, err := gen.ConnectedGNM(gen.Config{N: n, Seed: benchSeed, Weighting: wt, MaxWeight: 32}, 4*n)
	if err != nil {
		b.Fatal(err)
	}
	apsp := graph.AllPairs(g)
	l := vicinity.InflatedSize(q, n, 1.5)
	vics, err := vicinity.BuildAll(g, l)
	if err != nil {
		b.Fatal(err)
	}
	sets := make([][]graph.Vertex, n)
	for u := range sets {
		for _, m := range vics[u].Members() {
			sets[u] = append(sets[u], m.V)
		}
	}
	col, err := coloring.New(n, q, sets, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	partOf := make([]int32, n)
	for v := 0; v < n; v++ {
		partOf[v] = int32(col.Of(graph.Vertex(v)))
	}
	fx := &lemmaFixture{g: g, apsp: apsp, vics: vics, partOf: partOf, col: col, q: q}
	benchCache.Store(key, fx)
	return fx
}

// runScheme routes pairs and reports worst stretch + header high-water mark.
func runScheme(b *testing.B, s simnet.Scheme, apsp *graph.APSP, pairs [][2]graph.Vertex) {
	b.Helper()
	nw := simnet.NewNetwork(s)
	worst := 1.0
	header := 0
	for _, p := range pairs {
		res, err := nw.Route(p[0], p[1])
		if err != nil {
			b.Fatal(err)
		}
		if d := apsp.Dist(p[0], p[1]); d > 0 && res.Weight/d > worst {
			worst = res.Weight / d
		}
		if res.HeaderWords > header {
			header = res.HeaderWords
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Route(pairs[i%len(pairs)][0], pairs[i%len(pairs)][1]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(worst, "max-stretch")
	b.ReportMetric(float64(header), "header-max-words")
}

// samePartPairs samples routable pairs for the Lemma 7 benchmark.
func samePartPairs(fx *lemmaFixture, maxPairs int) [][2]graph.Vertex {
	var pairs [][2]graph.Vertex
	for j := 0; j < fx.q && len(pairs) < maxPairs; j++ {
		class := fx.col.Class(coloring.Color(j))
		for i := 0; i < len(class) && len(pairs) < maxPairs; i += 2 {
			for k := len(class) - 1; k > i && len(pairs) < maxPairs; k -= 3 {
				pairs = append(pairs, [2]graph.Vertex{class[i], class[k]})
			}
		}
	}
	return pairs
}

// BenchmarkLemma7Sweep exercises technique 1 in isolation across eps,
// verifying the (1+eps) bound and measuring sequence storage.
func BenchmarkLemma7Sweep(b *testing.B) {
	for _, eps := range []float64{1, 0.5, 0.25, 0.125} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			fx := lemmaSetup(b, 384, 5, true)
			in, err := core.NewIntra(core.IntraConfig{
				Graph: fx.g, Paths: fx.apsp, Vics: fx.vics, PartOf: fx.partOf, Eps: eps,
			})
			if err != nil {
				b.Fatal(err)
			}
			s := &core.IntraScheme{In: in}
			words := 0
			for v := 0; v < fx.g.N(); v++ {
				if w := s.TableWords(graph.Vertex(v)); w > words {
					words = w
				}
			}
			runScheme(b, s, fx.apsp, samePartPairs(fx, 800))
			b.ReportMetric(float64(words), "table-max-words")
			b.ReportMetric(float64(in.Budget()), "budget-b")
		})
	}
}

// BenchmarkLemma8Sweep exercises technique 2 in isolation across eps on a
// weighted graph (the log D subsequence machinery).
func BenchmarkLemma8Sweep(b *testing.B) {
	for _, eps := range []float64{1, 0.5, 0.25} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			fx := lemmaSetup(b, 384, 5, true)
			var targets []graph.Vertex
			for v := 0; v < fx.g.N(); v += 4 {
				targets = append(targets, graph.Vertex(v))
			}
			wParts := make([][]graph.Vertex, fx.q)
			for i, w := range targets {
				wParts[i%fx.q] = append(wParts[i%fx.q], w)
			}
			in, err := core.NewInter(core.InterConfig{
				Graph: fx.g, Paths: fx.apsp, Vics: fx.vics,
				UPartOf: fx.partOf, WParts: wParts, Eps: eps,
			})
			if err != nil {
				b.Fatal(err)
			}
			var pairs [][2]graph.Vertex
			for j := 0; j < fx.q; j++ {
				class := fx.col.Class(coloring.Color(j))
				for i := 0; i < len(class) && len(pairs) < 800; i += 3 {
					for _, w := range wParts[j] {
						if class[i] != w {
							pairs = append(pairs, [2]graph.Vertex{class[i], w})
						}
					}
				}
			}
			runScheme(b, &core.InterScheme{In: in}, fx.apsp, pairs)
		})
	}
}

// BenchmarkOracleVsRouting measures the stretch gap between the TZ distance
// oracle (k=3: stretch 5) and the routing schemes that target the same
// regime (Theorem 11: 5+eps).
func BenchmarkOracleVsRouting(b *testing.B) {
	g, apsp := benchGraph(b, benchN, true)
	o, err := oracle.New(g, 3, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	pairs := compactroute.SamplePairs(benchN, benchPairs, benchSeed+2)
	worstO := 1.0
	for _, p := range pairs {
		est, err := o.Query(p[0], p[1])
		if err != nil {
			b.Fatal(err)
		}
		if d := apsp.Dist(p[0], p[1]); d > 0 && est/d > worstO {
			worstO = est / d
		}
	}
	bs := builtRow(b, benchN, table1Rows()[7]) // thm11
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Query(pairs[i%len(pairs)][0], pairs[i%len(pairs)][1]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(worstO, "oracle-max-stretch")
	b.ReportMetric(bs.eval.MaxStretch, "routing-max-stretch")
}

// BenchmarkSequenceBudget is ablation E6: the waypoint budget b = ceil(2/eps)
// trades header/table words against stretch. eps=2 gives b=1 (minimum
// waypoints, worst stretch bound 3d); smaller eps buys tighter paths.
func BenchmarkSequenceBudget(b *testing.B) {
	for _, eps := range []float64{2, 1, 0.5, 0.125} {
		b.Run(fmt.Sprintf("b=%d", int(2/eps+0.999)), func(b *testing.B) {
			fx := lemmaSetup(b, 384, 5, true)
			in, err := core.NewIntra(core.IntraConfig{
				Graph: fx.g, Paths: fx.apsp, Vics: fx.vics, PartOf: fx.partOf, Eps: eps,
			})
			if err != nil {
				b.Fatal(err)
			}
			s := &core.IntraScheme{In: in}
			runScheme(b, s, fx.apsp, samePartPairs(fx, 600))
			b.ReportMetric(1+eps, "stretch-bound")
		})
	}
}

// BenchmarkHittingSet is ablation E7: greedy vs sampled hitting sets over
// the same vicinities (landmark count drives the Lemma 7 tree storage).
func BenchmarkHittingSet(b *testing.B) {
	fx := lemmaSetup(b, 512, 6, false)
	sets := make([][]graph.Vertex, fx.g.N())
	for u := range sets {
		for _, m := range fx.vics[u].Members() {
			sets[u] = append(sets[u], m.V)
		}
	}
	b.Run("greedy", func(b *testing.B) {
		h, err := hitting.Greedy(fx.g.N(), sets)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hitting.Greedy(fx.g.N(), sets); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(len(h)), "landmarks")
	})
	b.Run("sampled", func(b *testing.B) {
		h, err := hitting.Sample(fx.g.N(), sets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hitting.Sample(fx.g.N(), sets, benchSeed+int64(i)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(len(h)), "landmarks")
	})
}

// BenchmarkAdjacentPairs is E8: the Delta=1 degenerate-case bounds of
// Theorems 13/15 (paths of length <= 3+eps resp. 5+eps between neighbors).
func BenchmarkAdjacentPairs(b *testing.B) {
	for _, row := range []benchRow{table1Rows()[5], table1Rows()[6]} {
		b.Run(row.name, func(b *testing.B) {
			bs := builtRow(b, benchN, row)
			g := bs.scheme.Graph()
			var pairs [][2]compactroute.Vertex
			for u := 0; u < g.N() && len(pairs) < 3000; u++ {
				g.Neighbors(compactroute.Vertex(u), func(_ compactroute.Port, v compactroute.Vertex, _ float64) bool {
					pairs = append(pairs, [2]compactroute.Vertex{compactroute.Vertex(u), v})
					return len(pairs) < 3000
				})
			}
			ev, err := compactroute.Evaluate(bs.scheme, bs.apsp, pairs)
			if err != nil {
				b.Fatal(err)
			}
			if ev.BoundViolations != 0 {
				b.Fatalf("%d violations on adjacent pairs", ev.BoundViolations)
			}
			nw := compactroute.NewNetwork(bs.scheme)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Route(pairs[i%len(pairs)][0], pairs[i%len(pairs)][1]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(ev.MaxStretch, "max-routed-length-d1")
		})
	}
}

// BenchmarkParallelPipeline is E10: combined construction + evaluation
// wall-clock of the concurrent execution layer on a 2048-vertex graph,
// sweeping the worker count from 1 to all cores. Each iteration runs the
// full pipeline - APSP, Thorup-Zwick preprocessing, and the batched
// evaluation engine over 20000 sampled pairs - under the given parallelism
// cap; on a multicore machine the all-cores run should beat workers=1 by at
// least the ISSUE's 2x target. The determinism tests assert separately that
// every worker count produces an identical scheme and Evaluation.
func BenchmarkParallelPipeline(b *testing.B) {
	const n = 2048
	g, err := compactroute.GNM(n, 4*n, benchSeed, true, 32)
	if err != nil {
		b.Fatal(err)
	}
	pairs := compactroute.SamplePairs(n, 20000, benchSeed)
	workerCounts := []int{1}
	if cores := runtime.GOMAXPROCS(0); cores > 1 {
		if cores > 4 {
			workerCounts = append(workerCounts, cores/2)
		}
		workerCounts = append(workerCounts, cores)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			compactroute.SetParallelism(workers)
			defer compactroute.SetParallelism(0)
			for i := 0; i < b.N; i++ {
				apsp := compactroute.AllPairs(g)
				s, err := compactroute.NewThorupZwick(g, compactroute.Options{K: 2, Seed: benchSeed})
				if err != nil {
					b.Fatal(err)
				}
				ev, err := compactroute.EvaluateBatched(s, apsp, pairs, compactroute.EvalOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if ev.BoundViolations != 0 {
					b.Fatalf("%d stretch-bound violations", ev.BoundViolations)
				}
			}
		})
	}
}

// BenchmarkThm11Construction is the end-to-end construction row of E12: one
// full Theorem 11 preprocessing pass (vicinities, coloring, center cover,
// Lemma 7/8 cores) on a weighted graph, the workload the flat-CSR search
// kernels are measured against in BENCH_pr3.json.
func BenchmarkThm11Construction(b *testing.B) {
	const n = 512
	g, err := compactroute.GNM(n, 4*n, benchSeed, true, 32)
	if err != nil {
		b.Fatal(err)
	}
	apsp := compactroute.AllPairs(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compactroute.NewTheorem11(g, apsp, compactroute.Options{Eps: benchEps, Seed: benchSeed}); err != nil {
			b.Fatal(err)
		}
	}
}

// envInt reads a positive integer knob from the environment.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// BenchmarkLazyScaling is E11: scheme construction through a LazyAPSP whose
// row cache is bounded by a configurable memory budget, at graph sizes where
// the dense all-pairs matrices are prohibitive (12 n^2 bytes: ~4.8 GB at
// n = 20000, ~30 GB at n = 50000). The default size keeps the benchmark
// runnable in a quick sweep; set E11_N (e.g. E11_N=50000) and E11_BUDGET_MB
// to reproduce the scaling experiment of EXPERIMENTS.md:
//
//	E11_N=50000 E11_BUDGET_MB=512 go test -bench LazyScaling -benchtime 1x -timeout 0
//
// The benchmark fails if the cache's peak footprint exceeds its budget; the
// reported metrics record the footprint the dense path would have needed.
func BenchmarkLazyScaling(b *testing.B) {
	n := envInt("E11_N", 4096)
	budgetMB := envInt("E11_BUDGET_MB", 64)
	g, err := compactroute.GNM(n, 4*n, benchSeed, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	var st compactroute.LazyStats
	var tableMean float64
	for i := 0; i < b.N; i++ {
		lazy := compactroute.NewLazyAPSP(g, int64(budgetMB)<<20)
		s, err := compactroute.NewTheorem11(g, lazy, compactroute.Options{Eps: 0.5, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		ev, err := compactroute.Evaluate(s, lazy, compactroute.SamplePairs(n, 200, benchSeed+5))
		if err != nil {
			b.Fatal(err)
		}
		if ev.BoundViolations != 0 {
			b.Fatalf("%d stretch-bound violations", ev.BoundViolations)
		}
		st = lazy.Stats()
		tableMean = ev.Tables.Mean
		// Regression guard on the cache accounting (an insert-before-evict
		// bug would trip it). PeakBytes can legitimately exceed the budget
		// only below the documented one-row-per-shard floor, which every E11
		// configuration is far above.
		if st.BudgetBytes >= int64(lazy.CapacityRows())*st.RowBytes && st.PeakBytes > st.BudgetBytes {
			b.Fatalf("cache peak %d bytes exceeds budget %d", st.PeakBytes, st.BudgetBytes)
		}
	}
	b.ReportMetric(float64(n), "n")
	b.ReportMetric(12*float64(n)*float64(n)/(1<<20), "dense-hypothetical-mb")
	b.ReportMetric(float64(st.PeakBytes)/(1<<20), "cache-peak-mb")
	b.ReportMetric(float64(st.Misses), "rows-computed")
	b.ReportMetric(float64(st.Evictions), "rows-evicted")
	b.ReportMetric(tableMean, "table-mean-words")
}

// BenchmarkHeaderSize is E9: header high-water marks against the
// O((1/eps) log(nD)) bound of Theorem 11 as eps shrinks.
func BenchmarkHeaderSize(b *testing.B) {
	for _, eps := range []float64{1, 0.5, 0.25} {
		b.Run(fmt.Sprintf("thm11-eps=%v", eps), func(b *testing.B) {
			g, apsp := benchGraph(b, 256, true)
			s, err := compactroute.NewTheorem11(g, apsp, compactroute.Options{Eps: eps, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			ev, err := compactroute.Evaluate(s, apsp, compactroute.SamplePairs(256, 1000, benchSeed))
			if err != nil {
				b.Fatal(err)
			}
			nw := compactroute.NewNetwork(s)
			pairs := compactroute.SamplePairs(256, 512, benchSeed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Route(pairs[i%len(pairs)][0], pairs[i%len(pairs)][1]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportEval(b, ev)
		})
	}
}
