package compactroute_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"compactroute"
)

// saveTempSnapshot builds a scheme, saves it to a temp file, and returns the
// path plus the in-memory original.
func saveTempSnapshot(t *testing.T, build func() (compactroute.Scheme, error)) (string, compactroute.Scheme) {
	t.Helper()
	s, err := build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scheme.snap")
	if err := compactroute.SaveSchemeFile(path, s); err != nil {
		t.Fatal(err)
	}
	return path, s
}

// TestOpenSchemeFileRoundTrip is the mmap-path acceptance test: a scheme
// decoded over the mapping must evaluate identically to the in-memory
// original, and on platforms with mmap the snapshot must actually be mapped
// (zero-copy, page-cache-shared), not read into a buffer.
func TestOpenSchemeFileRoundTrip(t *testing.T) {
	const n = 96
	g, err := compactroute.GNM(n, 4*n, benchSeed, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	ps := compactroute.AllPairs(g)
	path, built := saveTempSnapshot(t, func() (compactroute.Scheme, error) {
		return compactroute.NewTheorem11(g, ps, compactroute.Options{Eps: 0.5, Seed: benchSeed})
	})
	sf, err := compactroute.OpenSchemeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	if !sf.Mapped() {
		t.Fatal("snapshot not memory-mapped on a platform with mmap support")
	}
	loaded := sf.Scheme
	pairs := compactroute.SamplePairs(n, 200, benchSeed+3)
	lps := compactroute.AllPairs(loaded.Graph())
	evb, err := compactroute.EvaluateBatched(built, ps, pairs, compactroute.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evl, err := compactroute.EvaluateBatched(loaded, lps, pairs, compactroute.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evb, evl) {
		t.Fatalf("mmap-loaded evaluation diverges:\nbuilt:  %+v\nmapped: %+v", evb, evl)
	}
}

// TestSchemeFileTruncationTyped pins the typed load failures: any truncation
// - including cuts landing exactly on the 64-byte boundaries where aligned
// sections start - is rejected by the v2 header's total-length check as
// ErrSnapshotTruncated, before any section is parsed or any table aliased
// over the bytes; same-length corruption is a distinct ErrSnapshotChecksum.
func TestSchemeFileTruncationTyped(t *testing.T) {
	g, err := compactroute.GNM(32, 128, benchSeed, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	path, _ := saveTempSnapshot(t, func() (compactroute.Scheme, error) {
		return compactroute.NewThorupZwick(g, compactroute.Options{K: 2, Seed: benchSeed})
	})
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cuts := []int{16, len(valid) / 3, len(valid) / 2, len(valid) - 4, len(valid) - 1}
	for off := 64; off < len(valid); off += 64 { // every aligned-section boundary candidate
		cuts = append(cuts, off)
	}
	for _, cut := range cuts {
		bad := filepath.Join(dir, "trunc.snap")
		if err := os.WriteFile(bad, valid[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := compactroute.LoadSchemeFile(bad)
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(valid))
		}
		if !errors.Is(err, compactroute.ErrSnapshotTruncated) {
			t.Fatalf("truncation at %d: %v, want ErrSnapshotTruncated", cut, err)
		}
	}
	// Same length, flipped payload byte: the total-length check passes and
	// the checksum rejects it instead.
	bad := append([]byte(nil), valid...)
	bad[len(bad)/2] ^= 0x01
	corrupt := filepath.Join(dir, "corrupt.snap")
	if err := os.WriteFile(corrupt, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = compactroute.LoadSchemeFile(corrupt)
	if !errors.Is(err, compactroute.ErrSnapshotChecksum) {
		t.Fatalf("corrupted payload: %v, want ErrSnapshotChecksum", err)
	}
	if errors.Is(err, compactroute.ErrSnapshotTruncated) {
		t.Fatalf("corrupted payload reported as truncation: %v", err)
	}
}

// TestSchemeFileAliasSafety serves the same read-only mapping from two
// independent handles and many goroutines at once. The mapping is mapped
// PROT_READ, so any write through an aliased table faults immediately, and
// the race detector (go test -race) flags any unsynchronized write to
// decoder-built index structures shared across queries.
func TestSchemeFileAliasSafety(t *testing.T) {
	const n = 64
	g, err := compactroute.GNM(n, 4*n, benchSeed, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	path, _ := saveTempSnapshot(t, func() (compactroute.Scheme, error) {
		return compactroute.NewThorupZwick(g, compactroute.Options{K: 2, Seed: benchSeed})
	})
	var handles [2]*compactroute.SchemeFile
	for i := range handles {
		sf, err := compactroute.OpenSchemeFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer sf.Close()
		handles[i] = sf
	}
	pairs := compactroute.SamplePairs(n, 100, benchSeed+9)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := handles[w%2].Scheme
			nw := compactroute.NewNetworkWithPath(s)
			for _, p := range pairs {
				if _, err := nw.Route(p[0], p[1]); err != nil {
					t.Errorf("route %v: %v", p, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestOpenLiveStateFileMunmapAfterDrain serves off a mapped snapshot, then
// rebuilds: the hot swap moves serving onto a heap-built generation and the
// engine munmaps the file once the mapped generation drains. Queries issued
// after the swap must be answered entirely off the heap generation - if any
// table still aliased the (now unmapped) pages this would fault.
func TestOpenLiveStateFileMunmapAfterDrain(t *testing.T) {
	const n = 96
	g, err := compactroute.GNM(n, 4*n, benchSeed, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	path, _ := saveTempSnapshot(t, func() (compactroute.Scheme, error) {
		return compactroute.NewThorupZwick(g, compactroute.Options{K: 2, Seed: benchSeed})
	})
	kind, err := compactroute.PeekSnapshotKind(path)
	if err != nil {
		t.Fatal(err)
	}
	build, err := compactroute.RebuildFuncFor(kind, compactroute.Options{K: 2, Seed: benchSeed}, 64)
	if err != nil {
		t.Fatal(err)
	}
	l, err := compactroute.OpenLiveStateFile(path, compactroute.LiveServeOptions{Workers: 2, Build: build})
	if err != nil {
		t.Fatal(err)
	}
	pairs := compactroute.SamplePairs(n, 100, benchSeed+1)
	for _, r := range l.Query(pairs, nil) {
		if r.Err != nil {
			t.Fatalf("mapped generation: %v", r.Err)
		}
	}
	// Churn while the mapped generation serves: every update lands in the
	// heap overlay - the mapped tables are PROT_READ, so any write through
	// an aliased slice would fault here, not pass silently.
	trace := compactroute.DeletionTrace(l.Scheme().Graph(), 0.05, benchSeed)
	if err := l.ApplyUpdates(trace); err != nil {
		t.Fatal(err)
	}
	for _, r := range l.Query(pairs, nil) {
		if r.Err != nil {
			t.Fatalf("churned mapped generation: %v", r.Err)
		}
	}
	if err := l.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if l.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", l.Generation())
	}
	// The mapped generation has drained (Rebuild swapped it out, and all
	// queries above returned), so the file is unmapped by now; these queries
	// run on the rebuilt heap generation.
	for _, r := range l.Query(pairs, nil) {
		if r.Err != nil {
			t.Fatalf("post-swap: %v", r.Err)
		}
	}
}
