// Overlay: head-to-head comparison on one weighted overlay network between
// the paper's Theorem 16 scheme (4k-7+eps) and the Thorup-Zwick baseline
// (4k-5) it improves on, at k=4 - the regime Table 1 highlights (9+eps vs
// the TZ-style space at n^{1/4}). Run it to see the stretch gap the new
// techniques buy at essentially the same routing-table size.
package main

import (
	"fmt"
	"log"

	"compactroute"
)

func main() {
	const (
		n    = 500
		k    = 4
		eps  = 0.25
		seed = 21
	)
	g, err := compactroute.GNM(n, 4*n, seed, true, 24)
	if err != nil {
		log.Fatal(err)
	}
	apsp := compactroute.AllPairs(g)

	ours, err := compactroute.NewTheorem16(g, apsp, compactroute.Options{Eps: eps, Seed: seed, K: k})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := compactroute.NewThorupZwick(g, compactroute.Options{K: k, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	pairs := compactroute.SamplePairs(n, 4000, seed+1)
	fmt.Printf("weighted overlay G(%d, %d), k=%d, eps=%v, %d pairs\n\n", n, g.M(), k, eps, len(pairs))
	fmt.Println("scheme                     max-stretch  mean-stretch  bound     table-mean")
	for _, s := range []compactroute.Scheme{ours, baseline} {
		ev, err := compactroute.Evaluate(s, apsp, pairs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %11.3f  %12.3f  %-8.2f %10.0f\n",
			s.Name(), ev.MaxStretch, ev.MeanStretch, s.StretchBound(1), ev.Tables.Mean)
	}
	fmt.Println("\nTheorem 16 replaces the top Thorup-Zwick level with a Lemma 8 detour")
	fmt.Println("through p_{k-2}(v), trading a (1+eps) factor on one leg for two full")
	fmt.Println("stretch units in the worst case.")
}
