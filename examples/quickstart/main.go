// Quickstart: preprocess the paper's headline (5+eps)-stretch scheme
// (Theorem 11) on a weighted random graph and route one message.
package main

import (
	"fmt"
	"log"

	"compactroute"
)

func main() {
	// A connected weighted graph with 400 vertices and 1600 edges.
	g, err := compactroute.GNM(400, 1600, 7, true, 32)
	if err != nil {
		log.Fatal(err)
	}

	// The preprocessing phase is centralized (Section 1 of the paper): it
	// may consult all-pairs shortest paths while building the per-vertex
	// routing tables and labels.
	apsp := compactroute.AllPairs(g)
	scheme, err := compactroute.NewTheorem11(g, apsp, compactroute.Options{Eps: 0.25, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Routing is strictly local: each vertex forwards using only its own
	// table, the destination's label and the packet header.
	nw := compactroute.NewNetworkWithPath(scheme)
	src, dst := compactroute.Vertex(3), compactroute.Vertex(377)
	res, err := nw.Route(src, dst)
	if err != nil {
		log.Fatal(err)
	}

	d := apsp.Dist(src, dst)
	fmt.Printf("routed %d -> %d\n", src, dst)
	fmt.Printf("  shortest distance: %.0f\n", d)
	fmt.Printf("  routed length:     %.0f (stretch %.2f, guaranteed <= %.2f)\n",
		res.Weight, res.Weight/d, scheme.StretchBound(d)/d)
	fmt.Printf("  hops: %d, header high-water: %d words\n", res.Hops, res.HeaderWords)
	fmt.Printf("  path: %v\n", res.Path)
	fmt.Printf("  table at source: %d words (vs %d for exact routing)\n",
		scheme.TableWords(src), g.N()-1)
}
