// Datacenter: the (5+eps)-stretch scheme of Theorem 11 on a weighted torus
// (a stand-in for a structured datacenter fabric with heterogeneous link
// costs), executed on the concurrent goroutine-per-vertex network. Every
// switch runs its forwarding function independently; messages are injected
// all at once and verified as they drain.
package main

import (
	"fmt"
	"log"

	"compactroute"
)

func main() {
	// 24x24 torus with integer link costs in [1, 32].
	g, err := compactroute.Grid(24, 24, true, 3, true)
	if err != nil {
		log.Fatal(err)
	}
	apsp := compactroute.AllPairs(g)
	scheme, err := compactroute.NewTheorem11(g, apsp, compactroute.Options{Eps: 0.5, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// One goroutine per switch; unbounded mailboxes; Close releases them.
	nw := compactroute.NewConcurrentNetwork(scheme)
	defer nw.Close()

	pairs := compactroute.SamplePairs(g.N(), 2000, 17)
	deliveries, err := nw.RouteAll(pairs)
	if err != nil {
		log.Fatal(err)
	}

	var (
		worst   float64 = 1
		sum     float64
		counted int
		failed  int
	)
	for _, del := range deliveries {
		if del.Err != nil {
			failed++
			continue
		}
		d := apsp.Dist(del.Src, del.Dst)
		if d == 0 {
			continue
		}
		s := del.Weight / d
		sum += s
		counted++
		if s > worst {
			worst = s
		}
		if del.Weight > scheme.StretchBound(d) {
			log.Fatalf("stretch bound violated for %d->%d", del.Src, del.Dst)
		}
	}
	fmt.Printf("routed %d concurrent messages over a %d-switch weighted torus\n", len(deliveries), g.N())
	fmt.Printf("  failures:     %d\n", failed)
	fmt.Printf("  mean stretch: %.3f\n", sum/float64(counted))
	fmt.Printf("  max stretch:  %.3f (guarantee: %.2f)\n", worst, scheme.StretchBound(1))
	fmt.Printf("  per-switch state: max %d words (exact routing would need %d)\n",
		maxTable(scheme, g.N()), g.N()-1)
}

func maxTable(s compactroute.Scheme, n int) int {
	maxW := 0
	for v := 0; v < n; v++ {
		if w := s.TableWords(compactroute.Vertex(v)); w > maxW {
			maxW = w
		}
	}
	return maxW
}
