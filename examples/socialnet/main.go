// Socialnet: the (2+eps, 1)-stretch scheme of Theorem 10 on an unweighted
// preferential-attachment graph - the kind of skewed-degree, low-diameter
// network where distances are tiny and additive slack matters more than
// multiplicative stretch. The example measures the whole distribution of
// routed path lengths against true distances.
package main

import (
	"fmt"
	"log"

	"compactroute"
)

func main() {
	const n = 600
	g, err := compactroute.PreferentialAttachment(n, 4, 11, false)
	if err != nil {
		log.Fatal(err)
	}
	apsp := compactroute.AllPairs(g)
	scheme, err := compactroute.NewTheorem10(g, apsp, compactroute.Options{Eps: 0.25, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	nw := compactroute.NewNetwork(scheme)
	pairs := compactroute.SamplePairs(n, 4000, 99)

	// Histogram of routed length by true distance.
	type bucket struct {
		count   int
		sumLen  float64
		maxLen  float64
		shorter int // routed exactly at distance
	}
	byDist := map[int]*bucket{}
	for _, p := range pairs {
		res, err := nw.Route(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		d := int(apsp.Dist(p[0], p[1]))
		b := byDist[d]
		if b == nil {
			b = &bucket{}
			byDist[d] = b
		}
		b.count++
		b.sumLen += res.Weight
		if res.Weight > b.maxLen {
			b.maxLen = res.Weight
		}
		if int(res.Weight) == d {
			b.shorter++
		}
	}

	fmt.Printf("Theorem 10 on a preferential-attachment graph (n=%d, m=%d)\n", g.N(), g.M())
	fmt.Printf("guarantee: routed <= (2+2*0.25)*d + 1\n\n")
	fmt.Println("  d   pairs  mean-routed  max-routed  exact%")
	maxD := 0
	for d := range byDist {
		if d > maxD {
			maxD = d
		}
	}
	for d := 1; d <= maxD; d++ {
		b := byDist[d]
		if b == nil {
			continue
		}
		fmt.Printf("%3d  %6d  %10.2f  %10.0f  %5.1f%%\n",
			d, b.count, b.sumLen/float64(b.count), b.maxLen,
			100*float64(b.shorter)/float64(b.count))
	}

	stats := compactroute.TableBreakdown(scheme)
	fmt.Println("\nstorage breakdown (mean words per vertex):")
	for part, st := range stats {
		fmt.Printf("  %-28s %8.1f\n", part, st.Mean)
	}
}
