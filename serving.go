package compactroute

import (
	"compactroute/internal/serve"
)

// Serving re-exports: the concurrent query engine of internal/serve, the
// subsystem behind cmd/routeserve and the batched evaluation harness.
type (
	// ServeEngine answers route queries for one preprocessed scheme from
	// many workers at once and keeps live serving statistics.
	ServeEngine = serve.Engine
	// ServeOptions configures a ServeEngine (workers, verification).
	ServeOptions = serve.Options
	// ServeResult is the outcome of one served query.
	ServeResult = serve.Result
	// ServeStats is a merged snapshot of an engine's live counters: QPS,
	// hop quantiles, stretch histogram and bound violations.
	ServeStats = serve.Stats
	// RouteAuditor shadow-verifies a deterministic sample of delivered
	// queries off the hot path through the bounded bidirectional kernel,
	// publishing compactroute_audit_* instruments. Attach one per engine via
	// ServeOptions.Audit / LiveServeOptions.Audit.
	RouteAuditor = serve.Auditor
	// RouteAuditStats is a snapshot of an auditor's counters.
	RouteAuditStats = serve.AuditStats
)

// Histogram geometry of the serving statistics, re-exported for clients
// that render ServeStats/LiveStats stretch histograms.
const (
	StretchBuckets     = serve.StretchBuckets
	StretchBucketWidth = serve.StretchBucketWidth
)

// NewServeEngine builds a query engine over a preprocessed (typically
// snapshot-loaded) scheme. With ServeOptions.Verify set and a PathSource
// supplied, every delivery is checked against the scheme's proved stretch
// bound and feeds the stretch histogram.
func NewServeEngine(s Scheme, o ServeOptions) (*ServeEngine, error) {
	return serve.New(s, o)
}

// NewRouteAuditor builds an auditor sampling the given rate (0..1) of
// delivered queries into a buffer of bufN records, shadow-verified by the
// given number of background workers. Hand it to exactly one engine via its
// options (the engine starts the workers); Flush before reading exact
// totals; Close when the engine is done.
func NewRouteAuditor(rate float64, workers, bufN int) *RouteAuditor {
	return serve.NewAuditor(rate, workers, bufN)
}
