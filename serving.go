package compactroute

import (
	"compactroute/internal/serve"
)

// Serving re-exports: the concurrent query engine of internal/serve, the
// subsystem behind cmd/routeserve and the batched evaluation harness.
type (
	// ServeEngine answers route queries for one preprocessed scheme from
	// many workers at once and keeps live serving statistics.
	ServeEngine = serve.Engine
	// ServeOptions configures a ServeEngine (workers, verification).
	ServeOptions = serve.Options
	// ServeResult is the outcome of one served query.
	ServeResult = serve.Result
	// ServeStats is a merged snapshot of an engine's live counters: QPS,
	// hop quantiles, stretch histogram and bound violations.
	ServeStats = serve.Stats
)

// Histogram geometry of the serving statistics, re-exported for clients
// that render ServeStats/LiveStats stretch histograms.
const (
	StretchBuckets     = serve.StretchBuckets
	StretchBucketWidth = serve.StretchBucketWidth
)

// NewServeEngine builds a query engine over a preprocessed (typically
// snapshot-loaded) scheme. With ServeOptions.Verify set and a PathSource
// supplied, every delivery is checked against the scheme's proved stretch
// bound and feeds the stretch histogram.
func NewServeEngine(s Scheme, o ServeOptions) (*ServeEngine, error) {
	return serve.New(s, o)
}
