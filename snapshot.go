package compactroute

import (
	"fmt"
	"io"
	"os"
	"time"

	"compactroute/internal/wire"
)

// SnapshotKind returns the registered wire kind of a scheme, or "" if the
// scheme does not support snapshots yet. Snapshot support is added per
// scheme (see internal/wire); currently the Theorem 10 and 11 schemes, the
// Thorup-Zwick baseline and the exact baseline are snapshottable.
func SnapshotKind(s Scheme) string {
	if es, ok := s.(wire.Encodable); ok {
		return es.WireKind()
	}
	return ""
}

// SnapshotKinds returns the scheme kinds with a registered snapshot
// decoder (order unspecified) - the set -save/-load and the live engine's
// hot-swap persistence cover.
func SnapshotKinds() []string { return wire.Kinds() }

// SaveScheme writes a versioned binary snapshot of a preprocessed scheme -
// the graph it was built for plus every routing table, sequence and label -
// so a serving process (cmd/routeserve) can LoadScheme it without paying the
// construction cost. The loaded scheme is behaviorally identical to s: same
// routing decisions, labels, headers and table words.
//
// It returns an error if the scheme's type has no snapshot support.
func SaveScheme(w io.Writer, s Scheme) error {
	es, ok := s.(wire.Encodable)
	if !ok {
		return fmt.Errorf("compactroute: scheme %s (%T) has no snapshot support", s.Name(), s)
	}
	g := s.Graph()
	snap := wire.New(es.WireKind(), g.Fingerprint())
	wire.EncodeGraph(snap, g)
	if err := es.EncodeSnapshot(snap); err != nil {
		return fmt.Errorf("compactroute: encode %s snapshot: %w", s.Name(), err)
	}
	if _, err := snap.WriteTo(w); err != nil {
		return fmt.Errorf("compactroute: write snapshot: %w", err)
	}
	return nil
}

// LoadScheme reads a snapshot written by SaveScheme: it verifies the magic,
// version and checksum, rebuilds the graph, checks the graph fingerprint
// recorded at save time, and dispatches to the decoder registered for the
// snapshot's scheme kind.
func LoadScheme(r io.Reader) (Scheme, error) {
	t0 := time.Now()
	snap, err := wire.Read(r)
	if err != nil {
		return nil, err
	}
	t1 := time.Now()
	s, err := decodeSnapshot(snap)
	if err != nil {
		return nil, err
	}
	wire.EmitLoad(wire.LoadEvent{Kind: snap.Kind, Parse: t1.Sub(t0), Decode: time.Since(t1)})
	return s, nil
}

func decodeSnapshot(snap *wire.Snapshot) (Scheme, error) {
	g, err := wire.DecodeGraph(snap)
	if err != nil {
		return nil, err
	}
	if fp := g.Fingerprint(); fp != snap.Fingerprint {
		return nil, fmt.Errorf("compactroute: snapshot graph fingerprint %016x does not match header %016x", fp, snap.Fingerprint)
	}
	dec, ok := wire.DecoderFor(snap.Kind)
	if !ok {
		return nil, fmt.Errorf("compactroute: no decoder registered for scheme kind %q (known: %v)", snap.Kind, wire.Kinds())
	}
	s, err := dec(g, snap)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// PeekSnapshotKind reads only the header of the snapshot at path and
// returns its scheme kind - how a serving process chooses a rebuild recipe
// before paying for the full (checksummed) decode. The magic and version
// are checked; everything after the kind string, including the checksum, is
// validated later by the real load.
func PeekSnapshotKind(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	hdr := make([]byte, 4096)
	n, err := io.ReadFull(f, hdr)
	if err != nil && err != io.ErrUnexpectedEOF {
		return "", fmt.Errorf("%s: read snapshot header: %w", path, err)
	}
	kind, err := wire.PeekKind(hdr[:n])
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return kind, nil
}

// Typed snapshot-load failures, matchable with errors.Is. A checksum
// mismatch means the bytes are all there but corrupt; a truncated file is
// rejected by the v2 header's total-length check before any section is
// parsed (and long before any table is aliased over the bytes).
var (
	ErrSnapshotChecksum  = wire.ErrChecksum
	ErrSnapshotTruncated = wire.ErrTruncated
)

// SchemeFile is a scheme decoded straight over an mmap'd snapshot: the
// fixed-width v2 sections (tree records, bunch arrays, port tables, labels)
// alias the mapping, so loading costs page-cache faults plus index rebuilds
// instead of a full decode, and the pages are shared between every process
// serving the same file.
//
// The mapping must outlive the scheme: Close only after the scheme (and
// anything derived from it) will never be used again. For serving with
// hot-swap, prefer OpenLiveStateFile, which munmaps automatically once the
// generation drains.
type SchemeFile struct {
	Scheme Scheme
	m      *wire.Mapping
}

// Mapped reports whether the snapshot is truly memory-mapped (false on
// platforms without mmap, where the file was read into an aligned buffer;
// aliasing still works, page sharing does not).
func (sf *SchemeFile) Mapped() bool { return sf.m.Mapped() }

// Close releases the mapping. The scheme must not be used afterwards.
func (sf *SchemeFile) Close() error { return sf.m.Close() }

// OpenSchemeFile memory-maps the snapshot at path (read-only) and decodes
// the scheme over the mapped bytes.
func OpenSchemeFile(path string) (*SchemeFile, error) {
	t0 := time.Now()
	m, err := wire.Map(path)
	if err != nil {
		return nil, err
	}
	t1 := time.Now()
	snap, err := wire.Parse(m.Bytes())
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	t2 := time.Now()
	s, err := decodeSnapshot(snap)
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	wire.EmitLoad(wire.LoadEvent{Kind: snap.Kind, Bytes: int64(len(m.Bytes())),
		Mapped: m.Mapped(), Map: t1.Sub(t0), Parse: t2.Sub(t1), Decode: time.Since(t2)})
	return &SchemeFile{Scheme: s, m: m}, nil
}

// SaveSchemeFile is SaveScheme into a file created (truncated) at path.
func SaveSchemeFile(path string, s Scheme) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveScheme(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSchemeFile loads the snapshot at path through the mmap fast path: the
// scheme's fixed-width tables alias the mapping, which is kept alive for the
// life of the process (aliased slices are invisible to the garbage
// collector, so there is no safe automatic unmap point). Use OpenSchemeFile
// for an explicit handle, or OpenLiveStateFile for serving with
// munmap-after-drain on hot swap.
func LoadSchemeFile(path string) (Scheme, error) {
	sf, err := OpenSchemeFile(path)
	if err != nil {
		return nil, err
	}
	return sf.Scheme, nil
}
