package compactroute_test

// Determinism regression tests for the concurrent execution layer: the
// parallel construction phase and the batched evaluation engine must be pure
// functions of their inputs - identical results for every worker count and
// goroutine schedule.

import (
	"reflect"
	"testing"

	"compactroute"
)

// evaluateAll routes pairs through every scheme and returns one Evaluation
// per scheme, in scheme order.
func evaluateAll(t *testing.T, schemes []compactroute.Scheme, apsp *compactroute.APSP,
	pairs [][2]compactroute.Vertex, workers int) []compactroute.Evaluation {
	t.Helper()
	evs := make([]compactroute.Evaluation, len(schemes))
	for i, s := range schemes {
		ev, err := compactroute.EvaluateBatched(s, apsp, pairs, compactroute.EvalOptions{Workers: workers})
		if err != nil {
			t.Fatalf("%s (workers=%d): %v", s.Name(), workers, err)
		}
		evs[i] = ev
	}
	return evs
}

// TestBatchedEvaluationMatchesSequential pins the engine's core guarantee:
// for a fixed generator seed and pair seed, the parallel evaluation returns
// an Evaluation identical (bit for bit, including float means) to the
// sequential path.
func TestBatchedEvaluationMatchesSequential(t *testing.T) {
	const n = 120
	unweighted, weighted, uAPSP, wAPSP := buildAll(t, n)
	pairs := compactroute.SamplePairs(n, 800, 17)
	for _, tc := range []struct {
		schemes []compactroute.Scheme
		apsp    *compactroute.APSP
	}{
		{unweighted, uAPSP},
		{weighted, wAPSP},
	} {
		sequential := evaluateAll(t, tc.schemes, tc.apsp, pairs, 1)
		for _, workers := range []int{2, 3, 8} {
			parallelEvs := evaluateAll(t, tc.schemes, tc.apsp, pairs, workers)
			for i, s := range tc.schemes {
				if !reflect.DeepEqual(sequential[i], parallelEvs[i]) {
					t.Errorf("%s: workers=%d evaluation differs from sequential:\n seq: %+v\n par: %+v",
						s.Name(), workers, sequential[i], parallelEvs[i])
				}
			}
		}
	}
}

// TestParallelConstructionDeterministic pins the construction-side guarantee:
// schemes built with different worker counts (including fully sequential)
// have identical routing tables, labels and routing behavior - the parallel
// preprocessing must not depend on goroutine scheduling.
func TestParallelConstructionDeterministic(t *testing.T) {
	const n = 120
	pairs := compactroute.SamplePairs(n, 600, 23)
	type snapshot struct {
		tables []int
		labels []int
		evs    []compactroute.Evaluation
	}
	build := func(workers int) (uSnap, wSnap snapshot) {
		compactroute.SetParallelism(workers)
		defer compactroute.SetParallelism(0)
		unweighted, weighted, uAPSP, wAPSP := buildAll(t, n)
		snap := func(schemes []compactroute.Scheme, apsp *compactroute.APSP) snapshot {
			var s snapshot
			for _, sch := range schemes {
				for v := 0; v < n; v++ {
					s.tables = append(s.tables, sch.TableWords(compactroute.Vertex(v)))
					s.labels = append(s.labels, sch.LabelWords(compactroute.Vertex(v)))
				}
			}
			s.evs = evaluateAll(t, schemes, apsp, pairs, 1)
			return s
		}
		return snap(unweighted, uAPSP), snap(weighted, wAPSP)
	}
	u1, w1 := build(1)
	for _, workers := range []int{4, 16} {
		u2, w2 := build(workers)
		for name, pair := range map[string][2]snapshot{
			"unweighted": {u1, u2},
			"weighted":   {w1, w2},
		} {
			if !reflect.DeepEqual(pair[0].tables, pair[1].tables) {
				t.Errorf("%s: workers=%d construction produced different routing tables", name, workers)
			}
			if !reflect.DeepEqual(pair[0].labels, pair[1].labels) {
				t.Errorf("%s: workers=%d construction produced different labels", name, workers)
			}
			if !reflect.DeepEqual(pair[0].evs, pair[1].evs) {
				t.Errorf("%s: workers=%d construction routes differently:\n w1: %+v\n w%d: %+v",
					name, workers, pair[0].evs, workers, pair[1].evs)
			}
		}
	}
}

// TestRaceSmoke constructs and evaluates every scheme on a small graph with
// multiple workers. It is sized to run in short mode so that
// `go test -race -short ./...` exercises every concurrent code path.
func TestRaceSmoke(t *testing.T) {
	const n = 64
	compactroute.SetParallelism(4)
	defer compactroute.SetParallelism(0)
	unweighted, weighted, uAPSP, wAPSP := buildAll(t, n)
	pairs := compactroute.SamplePairs(n, 200, 31)
	for _, tc := range []struct {
		schemes []compactroute.Scheme
		apsp    *compactroute.APSP
	}{
		{unweighted, uAPSP},
		{weighted, wAPSP},
	} {
		for _, s := range tc.schemes {
			ev, err := compactroute.EvaluateBatched(s, tc.apsp, pairs, compactroute.EvalOptions{Workers: 4})
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if ev.BoundViolations != 0 {
				t.Fatalf("%s: %d stretch-bound violations", s.Name(), ev.BoundViolations)
			}
		}
	}
}
