package compactroute_test

import (
	"fmt"

	"compactroute"
)

// ExampleEvaluate preprocesses the Theorem 11 scheme and evaluates it over
// sampled pairs, printing whether the paper's stretch guarantee held.
func ExampleEvaluate() {
	g, err := compactroute.GNM(300, 1200, 4, true, 16)
	if err != nil {
		fmt.Println(err)
		return
	}
	apsp := compactroute.AllPairs(g)
	scheme, err := compactroute.NewTheorem11(g, apsp, compactroute.Options{Eps: 0.25, Seed: 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	ev, err := compactroute.Evaluate(scheme, apsp, compactroute.SamplePairs(300, 1000, 4))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("violations of the (5+3eps)d bound: %d\n", ev.BoundViolations)
	fmt.Printf("stretch bound for d=100: %.0f\n", scheme.StretchBound(100))
	// Output:
	// violations of the (5+3eps)d bound: 0
	// stretch bound for d=100: 575
}

// ExampleNewNameIndependent routes with no destination label at all.
func ExampleNewNameIndependent() {
	g, err := compactroute.GNM(200, 800, 9, false, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	apsp := compactroute.AllPairs(g)
	scheme, err := compactroute.NewNameIndependent(g, apsp, compactroute.Options{Eps: 0.5, Seed: 9})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("label words: %d\n", scheme.LabelWords(0))
	res, err := compactroute.NewNetwork(scheme).Route(5, 150)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("delivered within bound: %v\n", res.Weight <= scheme.StretchBound(apsp.Dist(5, 150)))
	// Output:
	// label words: 0
	// delivered within bound: true
}
